//! The lint driver: file collection, rule execution, waiver and
//! baseline application.
//!
//! Determinism of the linter itself is part of the contract: files are
//! walked in sorted relative-path order, findings are sorted before
//! reporting, and nothing (no clock, no hash order, no thread
//! scheduling) can perturb the output between runs.

use crate::callgraph::{check_graph, Graph};
use crate::coverage::Coverage;
use crate::findings::{Finding, LintReport, Rule};
use crate::lexer::lex;
use crate::metrics_doc::{check_metrics_doc, collect_registrations, Registration};
use crate::parse::{parse_file, FnDef};
use crate::rules::check_file;
use crate::waiver::{Baseline, Waivers};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Directory names the walker never descends into. `fixtures` keeps
/// the linter's own deliberately-bad test inputs (and any checked-in
/// golden data) out of the real workspace's lint run.
const SKIP_DIRS: &[&str] = &["target", "fixtures", ".git"];

/// Collect every `.rs` file under `root`, as sorted
/// `(relative_path, contents)` pairs. Unreadable files are skipped —
/// the linter judges code, it does not gate on filesystem weather.
pub fn collect_files(root: &Path) -> Vec<(String, String)> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                if let Ok(src) = fs::read_to_string(&path) {
                    let rel = path
                        .strip_prefix(root)
                        .unwrap_or(&path)
                        .components()
                        .map(|c| c.as_os_str().to_string_lossy().into_owned())
                        .collect::<Vec<_>>()
                        .join("/");
                    files.push((rel, src));
                }
            }
        }
    }
    files.sort_by(|a, b| a.0.cmp(&b.0));
    files
}

/// Lint an in-memory file set without a METRICS.md (rule D8 is
/// skipped — it judges the registry/doc *pair*). `lint_root` supplies
/// the doc; use [`lint_files_doc`] to pass one explicitly.
pub fn lint_files(files: &[(String, String)], baseline: &Baseline) -> LintReport {
    lint_files_doc(files, baseline, None)
}

/// Lint an in-memory file set. This is the engine proper; `lint_root`
/// wraps it with the filesystem walk and the METRICS.md read.
pub fn lint_files_doc(
    files: &[(String, String)],
    baseline: &Baseline,
    metrics_doc: Option<&str>,
) -> LintReport {
    let mut findings: Vec<Finding> = Vec::new();
    let mut coverage = Coverage::default();
    let mut waivers: BTreeMap<&str, Waivers> = BTreeMap::new();
    let mut registrations: Vec<Registration> = Vec::new();
    let mut defs: Vec<FnDef> = Vec::new();

    for (rel, src) in files {
        let toks = lex(src);
        check_file(rel, &toks, &mut findings);
        coverage.scan_file(rel, &toks);
        collect_registrations(rel, &toks, &mut registrations);
        defs.extend(parse_file(rel, &toks));
        waivers.insert(rel, Waivers::collect(&toks));
    }
    coverage.finish(&mut findings);
    check_metrics_doc(&registrations, metrics_doc, &mut findings);

    // The call-graph pass (D10–D12, and D3's graph scope). When the
    // file set defines cycle-loop roots, graph-D3 — which sees the
    // whole call graph and therefore exonerates construction-time code
    // — replaces the lexical hot-file scope.
    let graph = Graph::build(defs);
    if !graph.cycle_roots().is_empty() {
        findings.retain(|f| f.rule != Rule::D3);
    }
    check_graph(&graph, &waivers, &mut findings);

    for f in &mut findings {
        let inline = waivers
            .get(f.path.as_str())
            .map(|w| w.allows(f.line, f.rule))
            .unwrap_or(false);
        if inline || baseline.contains(&f.fingerprint()) {
            f.waived = true;
        }
    }

    let mut report = LintReport {
        files_scanned: files.len() as u64,
        findings,
    };
    report.normalize();
    report
}

/// Walk `root` and lint everything under it, reading `METRICS.md` at
/// the root (when present) for rule D8.
pub fn lint_root(root: &Path, baseline: &Baseline) -> LintReport {
    let doc = fs::read_to_string(root.join("METRICS.md")).ok();
    lint_files_doc(&collect_files(root), baseline, doc.as_deref())
}

/// Find the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owned(files: &[(&str, &str)]) -> Vec<(String, String)> {
        files
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect()
    }

    #[test]
    fn waivers_suppress_findings() {
        let files = owned(&[(
            "crates/cpu/src/core.rs",
            "fn f() {\n    // lint: allow(D3) -- head checked above\n    x.unwrap();\n    y.unwrap();\n}\n",
        )]);
        let r = lint_files(&files, &Baseline::default());
        assert_eq!(r.findings.len(), 2);
        assert_eq!(r.waived_count(), 1);
        assert_eq!(r.unwaived_count(), 1);
        let unwaived: Vec<_> = r.unwaived().collect();
        assert_eq!(unwaived[0].line, 4);
    }

    #[test]
    fn baseline_suppresses_by_fingerprint() {
        let files = owned(&[("crates/mem/src/cache.rs", "use std::collections::HashMap;\n")]);
        let clean = lint_files(&files, &Baseline::default());
        assert_eq!(clean.unwaived_count(), 1);
        let b = Baseline::parse("D1 crates/mem/src/cache.rs HashMap\n");
        let waived = lint_files(&files, &b);
        assert_eq!(waived.unwaived_count(), 0);
        assert_eq!(waived.waived_count(), 1);
    }

    #[test]
    fn reports_are_deterministic() {
        let files = owned(&[
            ("crates/mem/src/b.rs", "use std::collections::HashSet;\n"),
            ("crates/mem/src/a.rs", "fn f() { let t = Instant::now(); }\n"),
        ]);
        use smtsim_core::json::ToJson;
        let a = lint_files(&files, &Baseline::default()).to_json();
        let b = lint_files(&files, &Baseline::default()).to_json();
        assert_eq!(a, b);
        // Sorted by path regardless of input order.
        assert!(a.find("a.rs").unwrap() < a.find("b.rs").unwrap());
    }
}
