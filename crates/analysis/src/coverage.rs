//! D4 — JSON field coverage.
//!
//! The figures pipeline only sees what reaches the JSON report; a stats
//! field that is counted but never serialized is a silent reporting
//! bug (and history shows they survive review: the field *exists*, the
//! numbers *look* complete). This pass cross-references every struct's
//! `pub` fields against the keys its `impl ToJson` emits.
//!
//! Mechanics, over the whole file set:
//!
//! 1. collect every named-field struct declaration (outside test
//!    regions) → `struct name → [(field, is_pub, file, line)]`;
//! 2. collect every `impl ToJson for <Name>` body → the set of string
//!    keys passed to `.field("…", …)` **plus** every `self.<ident>`
//!    access (a field folded into a computed value — e.g.
//!    `self.core.contexts` or a `self.l2_hit_rate()` method reading
//!    fields — still counts as reaching the report);
//! 3. for every struct that *has* an impl, flag `pub` fields that
//!    appear in neither set.
//!
//! Structs without a `ToJson` impl are not judged (not everything is
//! reportable), and a struct name declared twice in the file set is
//! skipped as ambiguous rather than guessed at.

use crate::findings::{Finding, Rule};
use crate::lexer::{Tok, TokKind};
use crate::rules::{in_regions, test_regions};
use std::collections::{BTreeMap, BTreeSet};

/// One struct's declaration site and fields.
#[derive(Debug, Clone)]
struct StructDecl {
    file: String,
    fields: Vec<FieldDecl>,
    /// Same name seen in more than one declaration.
    ambiguous: bool,
}

#[derive(Debug, Clone)]
struct FieldDecl {
    name: String,
    line: u32,
    is_pub: bool,
}

/// What one `impl ToJson for X` body mentions.
#[derive(Debug, Default, Clone)]
struct ImplInfo {
    keys: BTreeSet<String>,
    self_refs: BTreeSet<String>,
}

/// Accumulates declarations and impls across files, then reports.
#[derive(Debug, Default)]
pub struct Coverage {
    structs: BTreeMap<String, StructDecl>,
    impls: BTreeMap<String, ImplInfo>,
}

impl Coverage {
    /// Scan one file's tokens.
    pub fn scan_file(&mut self, rel: &str, toks: &[Tok<'_>]) {
        let regions = test_regions(toks);
        let sig: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        self.scan_structs(rel, toks, &regions, &sig);
        self.scan_impls(toks, &sig);
    }

    /// Emit the D4 findings after every file has been scanned.
    pub fn finish(self, out: &mut Vec<Finding>) {
        for (name, decl) in &self.structs {
            if decl.ambiguous {
                continue;
            }
            let Some(info) = self.impls.get(name) else {
                continue;
            };
            for f in &decl.fields {
                if !f.is_pub {
                    continue;
                }
                if info.keys.contains(&f.name) || info.self_refs.contains(&f.name) {
                    continue;
                }
                out.push(Finding {
                    rule: Rule::D4,
                    path: decl.file.clone(),
                    line: f.line,
                    symbol: format!("{name}.{}", f.name),
                    message: format!(
                        "pub field `{}` of `{name}` never reaches its ToJson impl: the JSON report silently drops it",
                        f.name
                    ),
                    chain: Vec::new(),
                    waived: false,
                });
            }
        }
    }

    fn scan_structs(&mut self, rel: &str, toks: &[Tok<'_>], regions: &[(usize, usize)], sig: &[usize]) {
        let mut si = 0;
        while si < sig.len() {
            let i = sig[si];
            if !toks[i].is_ident("struct") || in_regions(regions, i) {
                si += 1;
                continue;
            }
            let Some(&name_i) = sig.get(si + 1) else { break };
            if toks[name_i].kind != TokKind::Ident {
                si += 1;
                continue;
            }
            let name = toks[name_i].text.to_string();
            // Find the body `{`; `(` or `;` first means tuple/unit.
            let mut k = si + 2;
            let mut body = None;
            while k < sig.len() {
                let t = &toks[sig[k]];
                if t.is_punct('{') {
                    body = Some(k);
                    break;
                }
                if t.is_punct('(') || t.is_punct(';') {
                    break;
                }
                k += 1;
            }
            let Some(body_si) = body else {
                si = k + 1;
                continue;
            };
            let (fields, next_si) = parse_fields(toks, sig, body_si);
            match self.structs.get_mut(&name) {
                Some(prev) => prev.ambiguous = true,
                None => {
                    self.structs.insert(
                        name,
                        StructDecl {
                            file: rel.to_string(),
                            fields,
                            ambiguous: false,
                        },
                    );
                }
            }
            si = next_si;
        }
    }

    fn scan_impls(&mut self, toks: &[Tok<'_>], sig: &[usize]) {
        let mut si = 0;
        while si < sig.len() {
            let t = &toks[sig[si]];
            let next_is_for = sig
                .get(si + 1)
                .map(|&n| toks[n].is_ident("for"))
                == Some(true);
            if !(t.is_ident("ToJson") && next_is_for) {
                si += 1;
                continue;
            }
            // Type name: first identifier after `for`.
            let mut k = si + 2;
            let mut name = None;
            while k < sig.len() {
                let tt = &toks[sig[k]];
                if tt.kind == TokKind::Ident {
                    name = Some(tt.text.to_string());
                    break;
                }
                if tt.is_punct('{') {
                    break;
                }
                k += 1;
            }
            // Body: first `{` after the type.
            while k < sig.len() && !toks[sig[k]].is_punct('{') {
                k += 1;
            }
            if k >= sig.len() {
                break;
            }
            let (info, next_si) = parse_impl_body(toks, sig, k);
            if let Some(name) = name {
                let entry = self.impls.entry(name).or_default();
                entry.keys.extend(info.keys);
                entry.self_refs.extend(info.self_refs);
            }
            si = next_si;
        }
    }
}

/// Parse a struct body starting at `sig[body_si]` == `{`. Returns the
/// fields and the sig-index just past the closing `}`.
fn parse_fields(toks: &[Tok<'_>], sig: &[usize], body_si: usize) -> (Vec<FieldDecl>, usize) {
    let mut fields = Vec::new();
    let mut depth = 0i32;
    // Bracket depths inside types (`Vec<(u8, u64)>`, `[u64; 32]`): a
    // field boundary is a `,` only at all-zero nesting.
    let (mut paren, mut square, mut angle) = (0i32, 0i32, 0i32);
    let mut si = body_si;
    let mut expect_field = true;
    let mut pending_pub = false;
    let mut prev_ident_like = false; // last sig token could end a type (for `<` disambiguation)
    while si < sig.len() {
        let t = &toks[sig[si]];
        if t.is_punct('{') {
            depth += 1;
            si += 1;
            prev_ident_like = false;
            continue;
        }
        if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return (fields, si + 1);
            }
            si += 1;
            prev_ident_like = false;
            continue;
        }
        if depth == 1 && paren == 0 && square == 0 && angle == 0 {
            if t.is_punct(',') {
                expect_field = true;
                pending_pub = false;
                si += 1;
                prev_ident_like = false;
                continue;
            }
            if t.is_punct('#') {
                // Field attribute: skip it wholesale.
                let after = skip_attr_sig(toks, sig, si);
                si = after;
                continue;
            }
            if expect_field && t.is_ident("pub") {
                pending_pub = true;
                si += 1;
                // Skip a `(crate)`-style restriction.
                if sig.get(si).map(|&n| toks[n].is_punct('(')) == Some(true) {
                    let mut pd = 0i32;
                    while si < sig.len() {
                        if toks[sig[si]].is_punct('(') {
                            pd += 1;
                        } else if toks[sig[si]].is_punct(')') {
                            pd -= 1;
                            if pd == 0 {
                                si += 1;
                                break;
                            }
                        }
                        si += 1;
                    }
                }
                prev_ident_like = false;
                continue;
            }
            if expect_field
                && t.kind == TokKind::Ident
                && sig.get(si + 1).map(|&n| toks[n].is_punct(':')) == Some(true)
            {
                fields.push(FieldDecl {
                    name: t.text.to_string(),
                    line: t.line,
                    is_pub: pending_pub,
                });
                expect_field = false;
                si += 2;
                prev_ident_like = false;
                continue;
            }
        }
        match () {
            _ if t.is_punct('(') => paren += 1,
            _ if t.is_punct(')') => paren -= 1,
            _ if t.is_punct('[') => square += 1,
            _ if t.is_punct(']') => square -= 1,
            _ if t.is_punct('<') && prev_ident_like => angle += 1,
            _ if t.is_punct('>') && angle > 0 => angle -= 1,
            _ => {}
        }
        prev_ident_like = t.kind == TokKind::Ident || t.is_punct('>');
        si += 1;
    }
    (fields, si)
}

/// Parse an impl body starting at `sig[body_si]` == `{`: collect string
/// keys and `self.x` accesses. Returns the info and the sig-index past
/// the closing `}`.
fn parse_impl_body(toks: &[Tok<'_>], sig: &[usize], body_si: usize) -> (ImplInfo, usize) {
    let mut info = ImplInfo::default();
    let mut depth = 0i32;
    let mut si = body_si;
    while si < sig.len() {
        let t = &toks[sig[si]];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return (info, si + 1);
            }
        } else if t.kind == TokKind::StrLit {
            let key = t.text.trim_start_matches('b').trim_matches('"');
            info.keys.insert(key.to_string());
        } else if t.is_ident("self")
            && sig.get(si + 1).map(|&n| toks[n].is_punct('.')) == Some(true)
        {
            if let Some(&n) = sig.get(si + 2) {
                if toks[n].kind == TokKind::Ident {
                    info.self_refs.insert(toks[n].text.to_string());
                }
            }
        }
        si += 1;
    }
    (info, si)
}

/// `skip_attr` over significant indices: `sig[si]` == `#`; returns the
/// sig-index past the closing `]`.
fn skip_attr_sig(toks: &[Tok<'_>], sig: &[usize], si: usize) -> usize {
    let mut depth = 0i32;
    let mut j = si + 1;
    if sig.get(j).map(|&n| toks[n].is_punct('!')) == Some(true) {
        j += 1;
    }
    while j < sig.len() {
        let t = &toks[sig[j]];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        } else if depth == 0 {
            return j; // `#` not followed by `[` — bail
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let mut cov = Coverage::default();
        for (rel, src) in files {
            cov.scan_file(rel, &lex(src));
        }
        let mut out = Vec::new();
        cov.finish(&mut out);
        out
    }

    const STATS: &str = "pub struct S { pub a: u64, pub b: Vec<(u8, u64)>, internal: u64, pub dropped: u64 }";

    #[test]
    fn dropped_field_is_flagged() {
        let f = run(&[
            ("crates/cpu/src/stats.rs", STATS),
            (
                "crates/core/src/json.rs",
                r#"impl ToJson for S { fn write_json(&self, out: &mut String) {
                    let mut o = JsonObject::begin(out);
                    o.field("a", &self.a).field("b", &self.b);
                    o.end();
                } }"#,
            ),
        ]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::D4);
        assert_eq!(f[0].symbol, "S.dropped");
        assert_eq!(f[0].path, "crates/cpu/src/stats.rs");
    }

    #[test]
    fn self_access_counts_as_coverage() {
        // `cores` is folded into a computed key, not emitted verbatim.
        let f = run(&[
            ("crates/mem/src/system.rs", "pub struct M { pub cores: Vec<u64> }"),
            (
                "crates/core/src/json.rs",
                r#"impl ToJson for M { fn write_json(&self, out: &mut String) {
                    out.push_str(&format!("{}", self.cores.len()));
                } }"#,
            ),
        ]);
        assert!(f.is_empty());
    }

    #[test]
    fn structs_without_impls_are_not_judged() {
        assert!(run(&[("crates/cpu/src/stats.rs", STATS)]).is_empty());
    }

    #[test]
    fn ambiguous_names_are_skipped() {
        let f = run(&[
            ("crates/cpu/src/a.rs", "pub struct S { pub x: u64 }"),
            ("crates/mem/src/b.rs", "pub struct S { pub y: u64 }"),
            (
                "crates/core/src/json.rs",
                r#"impl ToJson for S { fn write_json(&self, out: &mut String) {} }"#,
            ),
        ]);
        assert!(f.is_empty());
    }

    #[test]
    fn private_fields_are_exempt() {
        let f = run(&[
            ("crates/energy/src/account.rs", "pub struct E { hidden: u64, pub shown: u64 }"),
            (
                "crates/core/src/json.rs",
                r#"impl ToJson for E { fn write_json(&self, out: &mut String) {
                    JsonObject::begin(out).field("shown", &self.shown);
                } }"#,
            ),
        ]);
        assert!(f.is_empty());
    }

    #[test]
    fn blanket_impls_do_not_match_structs() {
        let f = run(&[
            ("crates/cpu/src/stats.rs", "pub struct T { pub x: u64 }"),
            (
                "crates/core/src/json.rs",
                "impl<T: ToJson> ToJson for Vec<T> { fn write_json(&self, out: &mut String) {} }",
            ),
        ]);
        // The blanket impl's first ident after `for` is `Vec`, which is
        // no declared struct; `T` the struct is untouched (no impl).
        assert!(f.is_empty());
    }
}
