//! Observability primitives: typed trace events, a fixed-capacity
//! event ring, and the metric-registration types.
//!
//! This crate is a dependency-free leaf so the simulator crates
//! (`smtsim-cpu`, `smtsim-mem`, `smtsim-policy`) can emit events and
//! register metrics without pulling in the driver. Serialization of
//! these types stays in `smtsim-core` (the JSON emitter lives there),
//! which also hosts the cross-crate registry aggregation and the
//! Chrome `trace_event` exporter — see DESIGN.md §12.
//!
//! Two invariants every user of this crate relies on:
//!
//! 1. **Simulated time only.** Events carry the simulated cycle they
//!    occurred on; nothing in this crate reads a clock. Same-seed runs
//!    therefore produce byte-identical traces (enforced by
//!    `crates/core/tests/obs_trace.rs`).
//! 2. **Zero cost when disabled.** Components hold an
//!    `Option<EventRing>` that is `None` unless tracing was explicitly
//!    enabled; the disabled path is a single branch and allocates
//!    nothing.
//!
//! # Example
//!
//! ```
//! use smtsim_obs::{EventRing, TraceEvent};
//!
//! let mut ring = EventRing::new(2);
//! ring.emit(10, TraceEvent::FetchSlots { core: 0, tid: 1, slots: 4 });
//! ring.emit(11, TraceEvent::Stall { core: 0, tid: 0 });
//! ring.emit(12, TraceEvent::Flush { core: 0, tid: 1, squashed: 17 });
//!
//! // Capacity 2: the oldest record was dropped, bookkeeping remembers.
//! assert_eq!(ring.len(), 2);
//! assert_eq!(ring.total(), 3);
//! assert_eq!(ring.dropped(), 1);
//! let first = ring.records().next().unwrap();
//! assert_eq!((first.cycle, first.seq), (11, 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;

/// One typed simulator event, tagged with the component indices needed
/// to attribute it. Field meanings (and the JSONL/Chrome mappings) are
/// documented in DESIGN.md §12.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// Fetch slots granted to one thread in one cycle.
    FetchSlots {
        /// Core index.
        core: u32,
        /// Thread context index within the core.
        tid: u32,
        /// Instructions fetched for this thread this cycle.
        slots: u32,
    },
    /// A policy-triggered flush executed: the thread's in-flight
    /// instructions past the triggering load were squashed.
    Flush {
        /// Core index.
        core: u32,
        /// Thread context index within the core.
        tid: u32,
        /// Instructions removed (frontend + ROB) by the flush.
        squashed: u32,
    },
    /// A policy-triggered fetch stall took effect.
    Stall {
        /// Core index.
        core: u32,
        /// Thread context index within the core.
        tid: u32,
    },
    /// A thread's ROB occupancy reached a new high-water mark.
    RobHighWater {
        /// Core index.
        core: u32,
        /// Thread context index within the core.
        tid: u32,
        /// ROB entries in use at the new mark.
        occupancy: u32,
    },
    /// The core's shared issue-queue occupancy reached a new
    /// high-water mark.
    IqHighWater {
        /// Core index.
        core: u32,
        /// IQ entries in use at the new mark.
        occupancy: u32,
    },
    /// An MSHR entry was allocated (primary miss) or an access merged
    /// into an existing entry.
    MshrAlloc {
        /// Core index owning the MSHR file.
        core: u32,
        /// `true` when the access merged into an in-flight entry.
        merged: bool,
        /// MSHR entries in use after the allocation.
        occupancy: u32,
    },
    /// An MSHR entry retired because its line filled.
    MshrRetire {
        /// Core index owning the MSHR file.
        core: u32,
        /// MSHR entries in use after the retire.
        occupancy: u32,
    },
    /// A request was enqueued at a shared-L2 bank (a depth > 1 is a
    /// bank conflict: the request waits behind others).
    L2BankEnqueue {
        /// L2 bank index.
        bank: u32,
        /// Bank queue length including this request.
        depth: u32,
    },
    /// A demand miss completed its DRAM round-trip.
    DramRoundTrip {
        /// Core index that issued the demand miss.
        core: u32,
        /// Cycles from the originating access to the response.
        latency: u64,
    },
}

impl TraceEvent {
    /// Stable snake_case tag used as the `kind` field in JSONL output
    /// and the event name in Chrome `trace_event` exports.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::FetchSlots { .. } => "fetch_slots",
            TraceEvent::Flush { .. } => "flush",
            TraceEvent::Stall { .. } => "stall",
            TraceEvent::RobHighWater { .. } => "rob_high_water",
            TraceEvent::IqHighWater { .. } => "iq_high_water",
            TraceEvent::MshrAlloc { .. } => "mshr_alloc",
            TraceEvent::MshrRetire { .. } => "mshr_retire",
            TraceEvent::L2BankEnqueue { .. } => "l2_bank_enqueue",
            TraceEvent::DramRoundTrip { .. } => "dram_round_trip",
        }
    }
}

/// One recorded event: the simulated cycle it occurred on, its
/// per-ring emission sequence number, and the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated cycle of the event.
    pub cycle: u64,
    /// 0-based emission index within this ring (monotonic even across
    /// drops); merge order across rings is `(cycle, ring rank, seq)`.
    pub seq: u64,
    /// The event payload.
    pub event: TraceEvent,
}

/// A fixed-capacity ring of [`TraceRecord`]s keeping the most recent
/// `capacity` events. Overflow drops the *oldest* record — the tail of
/// a run (where a hang or a storm usually is) survives.
#[derive(Debug, Clone)]
pub struct EventRing {
    cap: usize,
    buf: VecDeque<TraceRecord>,
    total: u64,
}

impl EventRing {
    /// Create a ring keeping at most `capacity` records. A capacity of
    /// zero keeps nothing but still counts emissions.
    pub fn new(capacity: usize) -> EventRing {
        EventRing {
            cap: capacity,
            buf: VecDeque::with_capacity(capacity.min(4096)),
            total: 0,
        }
    }

    /// Record `event` at simulated `cycle`, dropping the oldest record
    /// if the ring is full.
    pub fn emit(&mut self, cycle: u64, event: TraceEvent) {
        let rec = TraceRecord {
            cycle,
            seq: self.total,
            event,
        };
        self.total += 1;
        if self.cap == 0 {
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(rec);
    }

    /// Records currently held, oldest first (emission order).
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf.iter()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when no records are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total emissions over the ring's lifetime, drops included.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Emissions lost to capacity overflow.
    pub fn dropped(&self) -> u64 {
        self.total - self.buf.len() as u64
    }
}

/// Whether a metric accumulates (counter) or is an instantaneous /
/// per-interval reading (gauge).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Cumulative, monotonically non-decreasing total at sample time.
    Counter,
    /// Instantaneous or interval-derived value.
    Gauge,
}

impl MetricKind {
    /// Stable lowercase tag (`"counter"` / `"gauge"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// The registration record for one named metric: every sampled stat
/// has exactly one spec, declared as a `const` in its owning crate and
/// listed in that crate's `METRICS` slice. The analysis crate's rule
/// D8 cross-checks every registration against METRICS.md.
///
/// # Example
///
/// ```
/// use smtsim_obs::{MetricKind, MetricSpec};
///
/// const DEMO: MetricSpec = MetricSpec {
///     name: "demo.example_rate",
///     unit: "events/kilocycle",
///     kind: MetricKind::Gauge,
///     krate: "demo",
///     doc: "An example registration.",
///     figure: "",
/// };
/// assert_eq!(DEMO.kind.as_str(), "gauge");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricSpec {
    /// Dotted lowercase name, globally unique (e.g. `cpu.thread.ipc`).
    pub name: &'static str,
    /// Human-readable unit (`instr/cycle`, `entries`, `fraction`, …).
    pub unit: &'static str,
    /// Counter or gauge semantics.
    pub kind: MetricKind,
    /// Short name of the crate that registers and computes it.
    pub krate: &'static str,
    /// One-sentence description for METRICS.md.
    pub doc: &'static str,
    /// Paper figure the metric feeds (`"Fig. 4"`), or `""` if none.
    pub figure: &'static str,
}

/// One sampled value of one metric instance at one simulated cycle.
///
/// `instance` disambiguates multi-instance metrics: a global thread
/// index for per-thread metrics, a core index for per-core, a bank
/// index for per-bank, and `0` for machine-wide ones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSample {
    /// Simulated cycle the sample was taken at.
    pub cycle: u64,
    /// The registered metric name (points into its [`MetricSpec`]).
    pub name: &'static str,
    /// Instance index (thread / core / bank, metric-dependent).
    pub instance: u32,
    /// The sampled value. Derived from integer counters at sample
    /// time; the division is replay-stable because both operands are.
    pub value: f64,
}

// ---------------------------------------------------------------------
// Serve-layer metrics (smtsim-serve)
// ---------------------------------------------------------------------
//
// The serving layer (crates/serve) cannot be depended on by
// smtsim-core, so its MetricSpec registrations live here in the leaf
// observability crate and are aggregated by `smtsim-core::obs`'s
// `all_metrics()`. Unlike the simulator metrics these are host-side
// service counters, reported by the server's `/healthz` endpoint
// rather than the interval sampler. Lint rule D8 still cross-checks
// them against METRICS.md.

/// Requests waiting in the server's bounded accept queue.
pub const METRIC_SERVE_QUEUE_DEPTH: MetricSpec = MetricSpec {
    name: "serve.queue_depth",
    unit: "requests",
    kind: MetricKind::Gauge,
    krate: "serve",
    doc: "Requests waiting in the bounded accept queue, sampled at /healthz.",
    figure: "",
};

/// Requests answered byte-identically from the fingerprint cache.
pub const METRIC_SERVE_CACHE_HITS: MetricSpec = MetricSpec {
    name: "serve.cache_hits",
    unit: "requests",
    kind: MetricKind::Counter,
    krate: "serve",
    doc: "Requests answered byte-identically from the fingerprint-keyed result cache.",
    figure: "",
};

/// Requests that missed the cache and ran a fresh simulation.
pub const METRIC_SERVE_CACHE_MISSES: MetricSpec = MetricSpec {
    name: "serve.cache_misses",
    unit: "requests",
    kind: MetricKind::Counter,
    krate: "serve",
    doc: "Requests that missed the cache (or coalesced onto an in-flight job) and simulated.",
    figure: "",
};

/// Requests shed with 429/503 + Retry-After under overload or drain.
pub const METRIC_SERVE_SHED_TOTAL: MetricSpec = MetricSpec {
    name: "serve.shed_total",
    unit: "requests",
    kind: MetricKind::Counter,
    krate: "serve",
    doc: "Requests shed with 429/503 plus Retry-After because the queue was full or the server was draining.",
    figure: "",
};

/// Job retries after JobPanicked / watchdog, paced by seeded backoff.
pub const METRIC_SERVE_RETRIES_TOTAL: MetricSpec = MetricSpec {
    name: "serve.retries_total",
    unit: "retries",
    kind: MetricKind::Counter,
    krate: "serve",
    doc: "Job re-executions after JobPanicked or watchdog abort, paced by fingerprint-seeded backoff.",
    figure: "",
};

/// Every serve-layer metric, in documentation order.
pub const SERVE_METRICS: &[MetricSpec] = &[
    METRIC_SERVE_QUEUE_DEPTH,
    METRIC_SERVE_CACHE_HITS,
    METRIC_SERVE_CACHE_MISSES,
    METRIC_SERVE_SHED_TOTAL,
    METRIC_SERVE_RETRIES_TOTAL,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let mut r = EventRing::new(3);
        for c in 0..5u64 {
            r.emit(c, TraceEvent::Stall { core: 0, tid: 0 });
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.total(), 5);
        assert_eq!(r.dropped(), 2);
        let cycles: Vec<u64> = r.records().map(|t| t.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
        let seqs: Vec<u64> = r.records().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_counts_but_keeps_nothing() {
        let mut r = EventRing::new(0);
        r.emit(1, TraceEvent::IqHighWater { core: 0, occupancy: 8 });
        assert!(r.is_empty());
        assert_eq!(r.total(), 1);
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn kinds_are_stable_snake_case() {
        let ev = TraceEvent::L2BankEnqueue { bank: 2, depth: 3 };
        assert_eq!(ev.kind(), "l2_bank_enqueue");
        let ev = TraceEvent::DramRoundTrip { core: 1, latency: 200 };
        assert_eq!(ev.kind(), "dram_round_trip");
    }
}
