//! The cycle-level CMP+SMT simulator.
//!
//! A [`Simulator`] owns `N` [`SmtCore`]s and the shared
//! [`MemoryModel`]. Each cycle the memory system advances first, then
//! every core, in id order — matching the in-order tick protocol the
//! component crates document. Which implementation sits behind each
//! facade — the detailed golden-figure models or the reduced
//! fast-forward ones — is chosen by the config's
//! [`crate::topology::Topology`] fidelity section (DESIGN.md §13);
//! the driver itself is fidelity-agnostic.
//!
//! The cycle loop carries a forward-progress watchdog: if no core
//! commits an instruction and no memory transaction retires for
//! `SimConfig::watchdog_cycles` consecutive cycles, the run aborts with
//! [`SimError::NoForwardProgress`] carrying a structured snapshot of the
//! wedged machine. The watchdog counts only simulated events — no wall
//! clock — so same-seed runs stay byte-identical.

use crate::config::SimConfig;
use crate::error::{CoreDiagnostic, ProgressDiagnostic, SimError};
use crate::obs::{self, MetricsRecorder, TraceRow};
use crate::result::SimResult;
use smtsim_obs::MetricSample;
use smtsim_cpu::thread::ThreadProgram;
use smtsim_cpu::SmtCore;
use smtsim_mem::MemoryModel;

use smtsim_policy::build_policy;
use smtsim_cpu::CoreFidelity;
use smtsim_trace::{spec, FastTraceGenerator, TraceGenerator};

/// A built machine ready to run.
pub struct Simulator {
    cfg: SimConfig,
    cores: Vec<SmtCore>,
    mem: MemoryModel,
    now: u64,
    /// Per-core committed-instruction count at the last observation.
    last_committed: Vec<u64>,
    /// Cycle of each core's most recent commit (0 = never committed).
    last_commit_cycle: Vec<u64>,
    /// Memory-system completion count at the last observation.
    last_completions: u64,
    /// Last cycle in which *anything* progressed (commit or memory
    /// completion).
    last_progress_cycle: u64,
    /// Interval metrics sampler (`None` unless enabled — sampling off
    /// must not perturb anything, DESIGN.md §12).
    metrics: Option<MetricsRecorder>,
    /// Cycles elided by stall skip-ahead so far (host-work saved;
    /// simulated results are identical with or without them).
    skipped_cycles: u64,
}

impl Simulator {
    /// Build the machine for an experiment. Rejects an invalid
    /// configuration with [`SimError::InvalidConfig`].
    pub fn build(cfg: &SimConfig) -> Result<Self, SimError> {
        cfg.validate().map_err(SimError::InvalidConfig)?;
        let env = cfg.policy_env();
        let contexts = cfg.core.contexts as usize;
        let fidelity = cfg.fidelity();
        let mem = MemoryModel::new(cfg.mem, fidelity.mem);
        let num_cores = cfg.cores() as usize;
        let mut cores = Vec::with_capacity(num_cores);
        for core_id in 0..cfg.cores() {
            let mut programs: Vec<ThreadProgram> = Vec::with_capacity(contexts);
            for slot in 0..contexts {
                let global = core_id as usize * contexts + slot;
                let profile = spec::benchmark_by_name(&cfg.benchmarks[global]).ok_or_else(
                    // Unreachable after validate(), but kept as an error
                    // rather than a panic: build is fallible now.
                    || SimError::InvalidConfig(format!("unknown benchmark {}", cfg.benchmarks[global])),
                )?;
                let seed = cfg.seed + global as u64 * 7919;
                // The IPC-approx backend reads no register operands, so
                // it gets the dependency-free generator (same code
                // layout and address-stream shape, far cheaper per
                // instruction — DESIGN.md §13).
                programs.push(if fidelity.core == CoreFidelity::IpcApprox {
                    ThreadProgram::from_fast_generator(FastTraceGenerator::new(profile, seed))
                } else {
                    ThreadProgram::from_generator(TraceGenerator::new(profile, seed))
                });
            }
            cores.push(SmtCore::with_fidelity(
                fidelity.core,
                core_id,
                cfg.core,
                build_policy(cfg.policy, &env),
                programs,
            ));
        }
        Ok(Simulator {
            cfg: cfg.clone(),
            last_committed: vec![0; num_cores],
            last_commit_cycle: vec![0; num_cores],
            last_completions: mem.total_completions(),
            last_progress_cycle: 0,
            metrics: None,
            skipped_cycles: 0,
            cores,
            mem,
            now: 0,
        })
    }

    /// Advance `cycles` cycles (without collecting a result). Returns
    /// [`SimError::NoForwardProgress`] if the watchdog fires.
    pub fn step(&mut self, cycles: u64) -> Result<(), SimError> {
        if self.now == 0 && self.cfg.warmup {
            for c in &mut self.cores {
                c.prewarm(&mut self.mem);
            }
        }
        let watchdog = self.cfg.watchdog_cycles;
        let end = self.now.saturating_add(cycles);
        while self.now < end {
            self.mem.tick(self.now);
            for c in &mut self.cores {
                c.tick(self.now, &mut self.mem);
            }
            self.now += 1;
            if let Some(rec) = self.metrics.as_mut() {
                if rec.due(self.now) {
                    rec.sample(self.now, &self.cores, &self.mem);
                }
            }
            self.observe_progress();
            if watchdog > 0 && self.now - self.last_progress_cycle >= watchdog {
                return Err(self.no_forward_progress());
            }
            if self.cfg.skip_ahead {
                self.try_skip_ahead(end, watchdog);
            }
        }
        Ok(())
    }

    /// Stall skip-ahead (DESIGN.md §16): when every component reports
    /// its next possible observable event strictly after `self.now`,
    /// the intervening ticks are provable no-ops — jump straight to the
    /// earliest event. The jump target is additionally clamped so that
    /// every cycle the *driver* observes still happens at its exact
    /// time: the end of this `step` call, the watchdog's firing cycle
    /// (`last_progress + watchdog - 1` must still be ticked so the
    /// abort carries an identical cycle number), and the cycle before
    /// the next metrics sample (samples read state *after* a tick of
    /// `due - 1`).
    fn try_skip_ahead(&mut self, end: u64, watchdog: u64) {
        if let Some(target) = self.skip_target(end, watchdog) {
            self.apply_skip(target);
        }
    }

    /// The skip-ahead target from `self.now`, or `None` when some
    /// component could do observable work before then. Pure — shared
    /// by [`try_skip_ahead`](Self::try_skip_ahead) and the test hook
    /// so the tested horizon is the shipped one.
    fn skip_target(&self, end: u64, watchdog: u64) -> Option<u64> {
        let from = self.now;
        // Cores first: on busy cycles (the common case) the first core
        // answers `from` after a couple of probes and the attempt costs
        // almost nothing; the memory-system scan only runs once every
        // core is quiescent.
        let mut target = u64::MAX;
        for c in &self.cores {
            target = target.min(c.next_event_cycle(from));
            if target <= from {
                return None;
            }
        }
        target = target.min(self.mem.next_event_cycle(from));
        if target <= from {
            return None;
        }
        target = target.min(end);
        if watchdog > 0 {
            // Fire cycle is last_progress + watchdog; its tick (a
            // no-op) must run so the abort snapshot is identical.
            target = target.min(self.last_progress_cycle + watchdog - 1);
        }
        if let Some(rec) = &self.metrics {
            let interval = rec.interval();
            let next_due = (from / interval + 1) * interval;
            target = target.min(next_due - 1);
        }
        (target > from).then_some(target)
    }

    /// Jump to `target`, compensating every component's time-based
    /// accounting for the cycles that will never be ticked.
    fn apply_skip(&mut self, target: u64) {
        let from = self.now;
        let skipped = target - from;
        self.mem.account_skip(skipped);
        for c in &mut self.cores {
            c.notify_skip(from, skipped);
        }
        self.skipped_cycles += skipped;
        self.now = target;
    }

    /// Test-only: the skip target the engine would pick right now for a
    /// run ending at `end` (clamps included), without applying it.
    #[doc(hidden)]
    pub fn skip_target_for_test(&self, end: u64) -> Option<u64> {
        self.skip_target(end, self.cfg.watchdog_cycles)
    }

    /// Test-only: unconditionally jump to `target` with the real skip
    /// accounting. Lets the mutation suite plant an off-by-one past the
    /// computed horizon and prove the byte-identity gate catches it.
    #[doc(hidden)]
    pub fn force_skip_for_test(&mut self, target: u64) {
        assert!(target > self.now, "skip target must be in the future");
        self.apply_skip(target);
    }

    /// Update the progress trackers after a cycle. Progress is "any
    /// core committed" or "any memory transaction completed" — both are
    /// monotonic counters, so this is a pair of compares per cycle.
    fn observe_progress(&mut self) {
        let mut progressed = false;
        for (i, c) in self.cores.iter().enumerate() {
            let committed = c.total_committed();
            if committed != self.last_committed[i] {
                self.last_committed[i] = committed;
                self.last_commit_cycle[i] = self.now;
                progressed = true;
            }
        }
        let completions = self.mem.total_completions();
        if completions != self.last_completions {
            self.last_completions = completions;
            progressed = true;
        }
        if progressed {
            self.last_progress_cycle = self.now;
        }
    }

    /// Build the structured livelock report. The headline core is the
    /// one that has gone longest without committing (first such core on
    /// ties — deterministic).
    // lint: allow(D10) -- watchdog abort diagnostics: runs at most once, after the simulation is already dead
    fn no_forward_progress(&self) -> SimError {
        let mut worst = 0usize;
        for (i, &cycle) in self.last_commit_cycle.iter().enumerate() {
            if cycle < self.last_commit_cycle[worst] {
                worst = i;
            }
        }
        let cores = self
            .cores
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let (mshr_occupancy, mshr_full) = self.mem.debug_mshr(i as u32);
                CoreDiagnostic {
                    core: i as u32,
                    last_commit_cycle: self.last_commit_cycle[i],
                    mshr_occupancy: mshr_occupancy as u64,
                    mshr_full,
                    threads: c.thread_snapshots(),
                }
            })
            .collect();
        SimError::NoForwardProgress {
            cycle: self.now,
            core: worst as u32,
            last_commit_cycle: self.last_commit_cycle[worst],
            diagnostic: ProgressDiagnostic {
                policy: self
                    .cores
                    .first()
                    .map(|c| c.policy_name())
                    .unwrap_or_default(),
                watchdog_cycles: self.cfg.watchdog_cycles,
                inflight: self.mem.inflight_count() as u64,
                cores,
            },
        }
    }

    /// Run the configured fixed interval and return the measurements.
    pub fn run(mut self) -> Result<SimResult, SimError> {
        let cycles = self.cfg.cycles;
        self.step(cycles)?;
        Ok(self.snapshot())
    }

    /// Current measurement snapshot (cumulative since cycle 0).
    pub fn snapshot(&self) -> SimResult {
        SimResult {
            policy: self
                .cores
                .first()
                .map(|c| c.policy_name())
                .unwrap_or_default(),
            workload: self.cfg.benchmarks.clone(),
            cycles: self.now,
            cores: self.cores.iter().map(|c| c.stats()).collect(),
            mem: self.mem.stats(),
            l2_hit_hist: self.mem.l2_hit_histogram().clone(),
        }
    }

    /// Cycle counter.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Cycles elided by stall skip-ahead so far. Purely a host-side
    /// throughput diagnostic: simulated results are byte-identical
    /// whether these cycles were skipped or ticked.
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped_cycles
    }

    /// Start event tracing on every component (the memory system and
    /// each core), each with a ring keeping the most recent `capacity`
    /// records. Tracing is off by default and reads only simulated
    /// time, so enabling it never changes simulation results.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.mem.enable_trace(capacity);
        for c in &mut self.cores {
            c.enable_trace(capacity);
        }
    }

    /// Start sampling every registered metric every `interval` cycles
    /// (see [`crate::obs::all_metrics`]).
    pub fn enable_metrics(&mut self, interval: u64) {
        self.metrics = Some(MetricsRecorder::new(interval));
    }

    /// The merged machine-wide event stream, ordered by
    /// `(cycle, rank, seq)` — empty unless [`Self::enable_tracing`]
    /// was called.
    pub fn trace_rows(&self) -> Vec<TraceRow> {
        obs::collect_rows(&self.cores, &self.mem)
    }

    /// All metric samples recorded so far — empty unless
    /// [`Self::enable_metrics`] was called.
    pub fn metrics_samples(&self) -> &[MetricSample] {
        self.metrics.as_ref().map(|m| m.samples()).unwrap_or(&[])
    }

    /// Record `(tid, trace_seq)` for every commit on every core — the
    /// hook behind the golden trace-order property tests.
    pub fn enable_commit_logs(&mut self) {
        for c in &mut self.cores {
            c.enable_commit_log();
        }
    }

    /// Per-core commit logs (empty unless enabled).
    pub fn commit_logs(&self) -> Vec<&[(usize, u64)]> {
        self.cores.iter().map(|c| c.commit_log()).collect()
    }

    /// The cores (read access, e.g. for policy introspection).
    pub fn cores(&self) -> &[SmtCore] {
        &self.cores
    }

    /// The shared memory model.
    pub fn mem(&self) -> &MemoryModel {
        &self.mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::Workload;
    use smtsim_policy::PolicyKind;

    fn quick(workload: &str, policy: PolicyKind, cycles: u64) -> SimResult {
        let w = Workload::by_name(workload).unwrap();
        let cfg = SimConfig::for_workload(w, policy).with_cycles(cycles);
        Simulator::build(&cfg).unwrap().run().unwrap()
    }

    #[test]
    fn single_core_workload_runs() {
        let r = quick("2W1", PolicyKind::Icount, 10_000);
        assert!(r.total_committed() > 1_000, "got {}", r.total_committed());
        assert_eq!(r.cores.len(), 1);
        assert_eq!(r.per_thread_ipc().len(), 2);
    }

    #[test]
    fn four_core_workload_runs_all_cores() {
        let r = quick("8W2", PolicyKind::Icount, 8_000);
        assert_eq!(r.cores.len(), 4);
        for (i, c) in r.cores.iter().enumerate() {
            assert!(
                c.total_committed() > 100,
                "core {i} barely progressed: {}",
                c.total_committed()
            );
        }
    }

    #[test]
    fn invalid_config_is_an_error_not_a_panic() {
        let w = Workload::by_name("2W1").unwrap();
        let mut cfg = SimConfig::for_workload(w, PolicyKind::Icount);
        cfg.cycles = 0;
        match Simulator::build(&cfg) {
            Err(SimError::InvalidConfig(msg)) => assert!(msg.contains("cycles")),
            Err(other) => panic!("expected InvalidConfig, got {other:?}"),
            Ok(_) => panic!("expected InvalidConfig, got a simulator"),
        }
    }

    #[test]
    fn deterministic_runs() {
        // Byte-identical JSON, not just matching headline counters:
        // any nondeterminism anywhere in the stats would show up here.
        use crate::json::ToJson;
        let a = quick("4W3", PolicyKind::FlushSpec(30), 6_000);
        let b = quick("4W3", PolicyKind::FlushSpec(30), 6_000);
        assert_eq!(a.total_committed(), b.total_committed());
        assert_eq!(a.total_flushes(), b.total_flushes());
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn deterministic_across_sweep_workers() {
        // The same configs run serially, through a parallel sweep, and
        // through a differently-sized parallel sweep must produce
        // byte-identical JSON — worker count and scheduling are not
        // allowed to leak into results.
        use crate::json::ToJson;
        use crate::sweep::{run_sweep, SweepJob};
        let jobs: Vec<SweepJob> = [
            ("a", "2W2", PolicyKind::Icount),
            ("b", "4W3", PolicyKind::Mflush),
            ("c", "2W5", PolicyKind::FlushSpec(30)),
        ]
        .into_iter()
        .map(|(label, wl, p)| {
            let w = Workload::by_name(wl).unwrap();
            SweepJob::new(label, SimConfig::for_workload(w, p).with_cycles(4_000))
        })
        .collect();
        let serial: Vec<String> = jobs
            .iter()
            .map(|j| Simulator::build(&j.config).unwrap().run().unwrap().to_json())
            .collect();
        for workers in [1, 2, 3] {
            let swept: Vec<String> = run_sweep(&jobs, workers)
                .iter()
                .map(|(_, r)| r.as_ref().unwrap().to_json())
                .collect();
            assert_eq!(serial, swept, "sweep with {workers} workers diverged");
        }
    }

    #[test]
    fn seeds_matter() {
        let w = Workload::by_name("2W2").unwrap();
        let a = Simulator::build(
            &SimConfig::for_workload(w, PolicyKind::Icount)
                .with_cycles(6_000)
                .with_seed(1),
        )
        .unwrap()
        .run()
        .unwrap();
        let b = Simulator::build(
            &SimConfig::for_workload(w, PolicyKind::Icount)
                .with_cycles(6_000)
                .with_seed(2),
        )
        .unwrap()
        .run()
        .unwrap();
        assert_ne!(a.total_committed(), b.total_committed());
    }

    #[test]
    fn policy_label_propagates() {
        let r = quick("2W1", PolicyKind::FlushSpec(100), 2_000);
        assert_eq!(r.policy, "FLUSH-S100");
    }

    #[test]
    fn l2_hit_histogram_populates_on_shared_l2_traffic() {
        let r = quick("8W3", PolicyKind::Icount, 20_000);
        assert!(
            r.l2_hit_hist.count() > 50,
            "8-thread memory-bound workload must produce L2 hits, got {}",
            r.l2_hit_hist.count()
        );
    }

    #[test]
    fn step_accumulates() {
        let w = Workload::by_name("2W1").unwrap();
        let cfg = SimConfig::for_workload(w, PolicyKind::Icount).with_cycles(4_000);
        let mut sim = Simulator::build(&cfg).unwrap();
        sim.step(2_000).unwrap();
        let early = sim.snapshot().total_committed();
        sim.step(2_000).unwrap();
        let late = sim.snapshot().total_committed();
        assert!(late > early);
        assert_eq!(sim.now(), 4_000);
    }

    #[test]
    fn healthy_runs_never_trip_a_tight_watchdog() {
        // The longest legitimate stall is far below 5k cycles; a
        // healthy run with a much tighter-than-default watchdog must
        // complete and match the watchdog-off result byte-for-byte
        // (the watchdog only observes, it never perturbs).
        use crate::json::ToJson;
        let w = Workload::by_name("4W1").unwrap();
        let base = SimConfig::for_workload(w, PolicyKind::Mflush).with_cycles(20_000);
        let strict = Simulator::build(&base.clone().with_watchdog(5_000))
            .unwrap()
            .run()
            .unwrap();
        let off = Simulator::build(&base.with_watchdog(0))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(strict.to_json(), off.to_json());
    }
}
