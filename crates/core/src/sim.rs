//! The cycle-level CMP+SMT simulator.
//!
//! A [`Simulator`] owns `N` [`SmtCore`]s and the shared
//! [`MemorySystem`]. Each cycle the memory system advances first, then
//! every core, in id order — matching the in-order tick protocol the
//! component crates document.

use crate::config::SimConfig;
use crate::result::SimResult;
use smtsim_cpu::thread::ThreadProgram;
use smtsim_cpu::SmtCore;
use smtsim_mem::MemorySystem;
use smtsim_policy::build_policy;
use smtsim_trace::{spec, TraceGenerator};

/// A built machine ready to run.
pub struct Simulator {
    cfg: SimConfig,
    cores: Vec<SmtCore>,
    mem: MemorySystem,
    now: u64,
}

impl Simulator {
    /// Build the machine for an experiment. Panics on an invalid
    /// configuration (configurations are validated, not recovered).
    pub fn build(cfg: &SimConfig) -> Self {
        // lint: allow(D3) -- construction-time validation, outside the cycle loop; configs fail fast
        cfg.validate().expect("invalid SimConfig");
        let env = cfg.policy_env();
        let contexts = cfg.core.contexts as usize;
        let mem = MemorySystem::new(cfg.mem);
        let cores = (0..cfg.cores())
            .map(|core_id| {
                let programs: Vec<ThreadProgram> = (0..contexts)
                    .map(|slot| {
                        let global = core_id as usize * contexts + slot;
                        let profile = spec::benchmark_by_name(&cfg.benchmarks[global])
                            // lint: allow(D3) -- benchmark names were checked by cfg.validate() above
                            .expect("validated benchmark");
                        ThreadProgram::from_generator(TraceGenerator::new(
                            profile,
                            cfg.seed + global as u64 * 7919,
                        ))
                    })
                    .collect();
                SmtCore::new(core_id, cfg.core, build_policy(cfg.policy, &env), programs)
            })
            .collect();
        Simulator {
            cfg: cfg.clone(),
            cores,
            mem,
            now: 0,
        }
    }

    /// Advance `cycles` cycles (without collecting a result).
    pub fn step(&mut self, cycles: u64) {
        if self.now == 0 && self.cfg.warmup {
            for c in &mut self.cores {
                c.prewarm(&mut self.mem);
            }
        }
        for _ in 0..cycles {
            self.mem.tick(self.now);
            for c in &mut self.cores {
                c.tick(self.now, &mut self.mem);
            }
            self.now += 1;
        }
    }

    /// Run the configured fixed interval and return the measurements.
    pub fn run(mut self) -> SimResult {
        let cycles = self.cfg.cycles;
        self.step(cycles);
        self.snapshot()
    }

    /// Current measurement snapshot (cumulative since cycle 0).
    pub fn snapshot(&self) -> SimResult {
        SimResult {
            policy: self
                .cores
                .first()
                .map(|c| c.policy_name())
                .unwrap_or_default(),
            workload: self.cfg.benchmarks.clone(),
            cycles: self.now,
            cores: self.cores.iter().map(|c| c.stats()).collect(),
            mem: self.mem.stats(),
            l2_hit_hist: self.mem.l2_hit_histogram().clone(),
        }
    }

    /// Cycle counter.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Record `(tid, trace_seq)` for every commit on every core — the
    /// hook behind the golden trace-order property tests.
    pub fn enable_commit_logs(&mut self) {
        for c in &mut self.cores {
            c.enable_commit_log();
        }
    }

    /// Per-core commit logs (empty unless enabled).
    pub fn commit_logs(&self) -> Vec<&[(usize, u64)]> {
        self.cores.iter().map(|c| c.commit_log()).collect()
    }

    /// The cores (read access, e.g. for policy introspection).
    pub fn cores(&self) -> &[SmtCore] {
        &self.cores
    }

    /// The shared memory system.
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::Workload;
    use smtsim_policy::PolicyKind;

    fn quick(workload: &str, policy: PolicyKind, cycles: u64) -> SimResult {
        let w = Workload::by_name(workload).unwrap();
        let cfg = SimConfig::for_workload(w, policy).with_cycles(cycles);
        Simulator::build(&cfg).run()
    }

    #[test]
    fn single_core_workload_runs() {
        let r = quick("2W1", PolicyKind::Icount, 10_000);
        assert!(r.total_committed() > 1_000, "got {}", r.total_committed());
        assert_eq!(r.cores.len(), 1);
        assert_eq!(r.per_thread_ipc().len(), 2);
    }

    #[test]
    fn four_core_workload_runs_all_cores() {
        let r = quick("8W2", PolicyKind::Icount, 8_000);
        assert_eq!(r.cores.len(), 4);
        for (i, c) in r.cores.iter().enumerate() {
            assert!(
                c.total_committed() > 100,
                "core {i} barely progressed: {}",
                c.total_committed()
            );
        }
    }

    #[test]
    fn deterministic_runs() {
        // Byte-identical JSON, not just matching headline counters:
        // any nondeterminism anywhere in the stats would show up here.
        use crate::json::ToJson;
        let a = quick("4W3", PolicyKind::FlushSpec(30), 6_000);
        let b = quick("4W3", PolicyKind::FlushSpec(30), 6_000);
        assert_eq!(a.total_committed(), b.total_committed());
        assert_eq!(a.total_flushes(), b.total_flushes());
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn deterministic_across_sweep_workers() {
        // The same configs run serially, through a parallel sweep, and
        // through a differently-sized parallel sweep must produce
        // byte-identical JSON — worker count and scheduling are not
        // allowed to leak into results.
        use crate::json::ToJson;
        use crate::sweep::{run_sweep, SweepJob};
        let jobs: Vec<SweepJob> = [
            ("a", "2W2", PolicyKind::Icount),
            ("b", "4W3", PolicyKind::Mflush),
            ("c", "2W5", PolicyKind::FlushSpec(30)),
        ]
        .into_iter()
        .map(|(label, wl, p)| {
            let w = Workload::by_name(wl).unwrap();
            SweepJob::new(label, SimConfig::for_workload(w, p).with_cycles(4_000))
        })
        .collect();
        let serial: Vec<String> = jobs
            .iter()
            .map(|j| Simulator::build(&j.config).run().to_json())
            .collect();
        for workers in [1, 2, 3] {
            let swept: Vec<String> = run_sweep(&jobs, workers)
                .iter()
                .map(|(_, r)| r.to_json())
                .collect();
            assert_eq!(serial, swept, "sweep with {workers} workers diverged");
        }
    }

    #[test]
    fn seeds_matter() {
        let w = Workload::by_name("2W2").unwrap();
        let a = Simulator::build(
            &SimConfig::for_workload(w, PolicyKind::Icount)
                .with_cycles(6_000)
                .with_seed(1),
        )
        .run();
        let b = Simulator::build(
            &SimConfig::for_workload(w, PolicyKind::Icount)
                .with_cycles(6_000)
                .with_seed(2),
        )
        .run();
        assert_ne!(a.total_committed(), b.total_committed());
    }

    #[test]
    fn policy_label_propagates() {
        let r = quick("2W1", PolicyKind::FlushSpec(100), 2_000);
        assert_eq!(r.policy, "FLUSH-S100");
    }

    #[test]
    fn l2_hit_histogram_populates_on_shared_l2_traffic() {
        let r = quick("8W3", PolicyKind::Icount, 20_000);
        assert!(
            r.l2_hit_hist.count() > 50,
            "8-thread memory-bound workload must produce L2 hits, got {}",
            r.l2_hit_hist.count()
        );
    }

    #[test]
    fn step_accumulates() {
        let w = Workload::by_name("2W1").unwrap();
        let cfg = SimConfig::for_workload(w, PolicyKind::Icount).with_cycles(4_000);
        let mut sim = Simulator::build(&cfg);
        sim.step(2_000);
        let early = sim.snapshot().total_committed();
        sim.step(2_000);
        let late = sim.snapshot().total_committed();
        assert!(late > early);
        assert_eq!(sim.now(), 4_000);
    }
}
