//! Experiment configuration.

use crate::suggest::did_you_mean;
use crate::topology::{Fidelity, Topology};
use crate::workloads::Workload;
use smtsim_cpu::CoreConfig;
use smtsim_mem::MemConfig;
use smtsim_policy::{PolicyEnv, PolicyKind};

/// Default measurement interval in cycles.
///
/// The paper simulates a fixed 120M-cycle interval; with warmed caches
/// our synthetic traces reach steady state quickly, so the default is
/// scaled down to keep full figure sweeps tractable. Every driver knob
/// remains overridable.
pub const DEFAULT_CYCLES: u64 = 150_000;

/// Default forward-progress watchdog interval in cycles.
///
/// If no core commits an instruction and no memory transaction retires
/// for this many consecutive cycles, the run aborts with
/// `SimError::NoForwardProgress` instead of silently spinning to the
/// cycle budget. The longest legitimate stall in the Fig. 1 machine is
/// a few thousand cycles (TLB miss + L2 miss + full bus contention),
/// so 50k is an order of magnitude of headroom.
pub const DEFAULT_WATCHDOG: u64 = 50_000;

/// Default event-ring capacity per component when tracing is enabled
/// (`--trace-events`).
///
/// Rings keep the most recent events, so the tail of a run — where a
/// FLUSH storm or a livelock lives — always survives; 64Ki records per
/// component bounds memory at a few MB per core while covering tens of
/// thousands of cycles of dense activity.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// Default interval metrics sampling period in cycles
/// (`--metrics-interval`).
///
/// Coarse enough that sampling cost is invisible, fine enough to
/// resolve policy phase behaviour within the default
/// [`DEFAULT_CYCLES`]-cycle run (15 samples).
pub const DEFAULT_METRICS_INTERVAL: u64 = 10_000;

/// One complete experiment: machine + workload + policy + interval.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Explicit machine geometry and per-component fidelity
    /// (DESIGN.md §13). `validate` cross-checks `core`, `mem` and the
    /// benchmark list against it.
    pub topology: Topology,
    /// Per-core configuration (Fig. 1 defaults).
    pub core: CoreConfig,
    /// Memory hierarchy configuration; `num_cores` must match the
    /// workload.
    pub mem: MemConfig,
    /// Fetch policy for every core.
    pub policy: PolicyKind,
    /// Benchmark names, one per hardware thread, in thread order
    /// (consecutive pairs share a core).
    pub benchmarks: Vec<String>,
    /// Simulated cycles (fixed interval, as in the paper).
    pub cycles: u64,
    /// Base RNG seed; thread `i` uses `seed + i * 7919`.
    pub seed: u64,
    /// Warm caches/TLBs to the trace-driven starting condition.
    pub warmup: bool,
    /// Forward-progress watchdog interval in cycles; `0` disables the
    /// watchdog entirely.
    pub watchdog_cycles: u64,
    /// Stall skip-ahead: when every component reports a quiescent
    /// window (DESIGN.md §16), jump the cycle counter to the next
    /// event instead of ticking through provable no-ops. Results are
    /// byte-identical either way (pinned by the `skip_ahead` property
    /// tests); the switch exists for A/B verification and debugging.
    pub skip_ahead: bool,
}

impl SimConfig {
    /// Experiment on a paper workload with Fig. 1 machine defaults.
    pub fn for_workload(workload: &Workload, policy: PolicyKind) -> Self {
        SimConfig {
            topology: Topology::paper(workload.cores()),
            core: CoreConfig::paper(),
            mem: MemConfig::paper(workload.cores()),
            policy,
            benchmarks: workload
                .benchmark_names()
                .into_iter()
                .map(String::from)
                .collect(),
            cycles: DEFAULT_CYCLES,
            seed: 0x5eed,
            warmup: true,
            watchdog_cycles: DEFAULT_WATCHDOG,
            skip_ahead: true,
        }
    }

    /// Ad-hoc experiment from benchmark names (must be an even count).
    pub fn for_benchmarks(benchmarks: &[&str], policy: PolicyKind) -> Self {
        let cores = (benchmarks.len() / 2).max(1) as u32;
        SimConfig {
            topology: Topology::paper(cores),
            core: CoreConfig::paper(),
            mem: MemConfig::paper(cores),
            policy,
            benchmarks: benchmarks.iter().map(|s| s.to_string()).collect(),
            cycles: DEFAULT_CYCLES,
            seed: 0x5eed,
            warmup: true,
            watchdog_cycles: DEFAULT_WATCHDOG,
            skip_ahead: true,
        }
    }

    /// Builder-style override of the measurement interval.
    pub fn with_cycles(mut self, cycles: u64) -> Self {
        self.cycles = cycles;
        self
    }

    /// Builder-style override of the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style override of the watchdog interval (0 disables).
    pub fn with_watchdog(mut self, watchdog_cycles: u64) -> Self {
        self.watchdog_cycles = watchdog_cycles;
        self
    }

    /// Builder-style override of stall skip-ahead (on by default).
    pub fn with_skip_ahead(mut self, skip_ahead: bool) -> Self {
        self.skip_ahead = skip_ahead;
        self
    }

    /// Builder-style override of the per-component fidelity.
    pub fn with_fidelity(mut self, fidelity: Fidelity) -> Self {
        self.topology.fidelity = fidelity;
        self
    }

    /// The per-component fidelity this experiment runs at.
    pub fn fidelity(&self) -> Fidelity {
        self.topology.fidelity
    }

    /// Number of SMT cores — the declared topology, not a division of
    /// the benchmark list (`validate` checks the list fills it
    /// exactly).
    pub fn cores(&self) -> u32 {
        self.topology.cores
    }

    /// The policy environment the machine parameters imply (feeds
    /// MFLUSH's MIN/MAX/MT operational environment).
    pub fn policy_env(&self) -> PolicyEnv {
        PolicyEnv {
            min_latency: self.mem.l1_miss_nominal(),
            max_latency: self.mem.l2_miss_nominal(),
            bus_delay: self.mem.bus_latency,
            bank_delay: self.mem.l2_bank_cycles,
            // MFLUSH's MT term scales with the cores sharing *one* L2.
            num_cores: self.mem.cores_per_cluster(),
            num_banks: self.mem.l2_banks,
            shared_queue_entries: self.core.int_queue,
        }
    }

    /// Validate the experiment.
    pub fn validate(&self) -> Result<(), String> {
        self.topology.validate()?;
        self.core.validate()?;
        self.mem.validate()?;
        if self.topology.contexts_per_core != self.core.contexts {
            return Err(format!(
                "topology declares {} contexts per core but the core config has {}",
                self.topology.contexts_per_core, self.core.contexts
            ));
        }
        if self.topology.l2_clusters != self.mem.l2_clusters {
            return Err(format!(
                "topology declares {} L2 clusters but the mem config has {}",
                self.topology.l2_clusters, self.mem.l2_clusters
            ));
        }
        if self.topology.cores != self.mem.num_cores {
            return Err(format!(
                "topology declares {} cores but mem config has {}",
                self.topology.cores, self.mem.num_cores
            ));
        }
        if self.benchmarks.is_empty() {
            return Err("no benchmarks".into());
        }
        let contexts = self.core.contexts as usize;
        if !self.benchmarks.len().is_multiple_of(contexts) {
            // Reported before any cores-vs-benchmarks comparison: a
            // truncating division here used to let e.g. 5 benchmarks
            // masquerade as 2 cores' worth.
            return Err(format!(
                "{} benchmarks cannot be split into {}-context cores: \
                 give a multiple of {} benchmark names (one per hardware thread)",
                self.benchmarks.len(),
                contexts,
                contexts
            ));
        }
        if self.benchmarks.len() != self.topology.threads() {
            return Err(format!(
                "{} benchmarks but the topology has {} threads ({} cores x {} contexts)",
                self.benchmarks.len(),
                self.topology.threads(),
                self.topology.cores,
                self.topology.contexts_per_core
            ));
        }
        let known: Vec<&str> = smtsim_trace::spec::ALL_BENCHMARKS
            .iter()
            .map(|b| b.name)
            .collect();
        for b in &self.benchmarks {
            if smtsim_trace::spec::benchmark_by_name(b).is_none() {
                return Err(match did_you_mean(b, &known) {
                    Some(s) => format!("unknown benchmark {b} (did you mean '{s}'?)"),
                    None => format!("unknown benchmark {b}"),
                });
            }
        }
        if self.cycles == 0 {
            return Err("cycles == 0".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_config_is_consistent() {
        let w = Workload::by_name("6W3").unwrap();
        let cfg = SimConfig::for_workload(w, PolicyKind::Mflush);
        cfg.validate().unwrap();
        assert_eq!(cfg.cores(), 3);
        assert_eq!(cfg.mem.num_cores, 3);
        assert_eq!(cfg.benchmarks.len(), 6);
    }

    #[test]
    fn policy_env_matches_fig1_machine() {
        let w = Workload::by_name("8W1").unwrap();
        let cfg = SimConfig::for_workload(w, PolicyKind::Mflush);
        let env = cfg.policy_env();
        assert_eq!(env.min_latency, 22);
        assert_eq!(env.max_latency, 272);
        assert_eq!(env.num_cores, 4);
        assert_eq!(env.num_banks, 4);
    }

    #[test]
    fn mismatched_core_count_rejected() {
        let w = Workload::by_name("4W1").unwrap();
        let mut cfg = SimConfig::for_workload(w, PolicyKind::Icount);
        cfg.mem = MemConfig::paper(3);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn unknown_benchmark_rejected() {
        let mut cfg = SimConfig::for_benchmarks(&["gzip", "nosuch"], PolicyKind::Icount);
        assert!(cfg.validate().is_err());
        cfg.benchmarks[1] = "mcf".into();
        cfg.validate().unwrap();
    }

    #[test]
    fn unknown_benchmark_gets_typo_hint() {
        let cfg = SimConfig::for_benchmarks(&["gzip", "mfc"], PolicyKind::Icount);
        let err = cfg.validate().unwrap_err();
        assert!(
            err.contains("did you mean 'mcf'?"),
            "expected a suggestion, got: {err}"
        );
        // Garbage far from any name still errors, just without a hint.
        let cfg = SimConfig::for_benchmarks(&["gzip", "zzzzzzzz"], PolicyKind::Icount);
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("unknown benchmark") && !err.contains("did you mean"));
    }

    #[test]
    fn odd_benchmark_count_rejected_with_clear_message() {
        let w = Workload::by_name("4W1").unwrap();
        let mut cfg = SimConfig::for_workload(w, PolicyKind::Icount);
        cfg.benchmarks.pop();
        let err = cfg.validate().unwrap_err();
        assert!(
            err.contains("3 benchmarks") && err.contains("2-context"),
            "message must name the count and the context width, got: {err}"
        );
    }

    #[test]
    fn benchmark_count_must_fill_declared_topology() {
        let w = Workload::by_name("4W1").unwrap();
        let mut cfg = SimConfig::for_workload(w, PolicyKind::Icount);
        // Even count (passes the multiple-of-contexts gate) but one
        // whole core short of the declared 2-core topology.
        cfg.benchmarks.truncate(2);
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("topology has 4 threads"), "{err}");
    }

    #[test]
    fn fidelity_defaults_detailed_and_overrides() {
        use crate::topology::Fidelity;
        let w = Workload::by_name("2W1").unwrap();
        let cfg = SimConfig::for_workload(w, PolicyKind::Icount);
        assert_eq!(cfg.fidelity(), Fidelity::detailed());
        let cfg = cfg.with_fidelity(Fidelity::fast());
        assert_eq!(cfg.fidelity(), Fidelity::fast());
        cfg.validate().unwrap();
    }

    #[test]
    fn topology_cross_checks_catch_drift() {
        let w = Workload::by_name("2W1").unwrap();
        let mut cfg = SimConfig::for_workload(w, PolicyKind::Icount);
        cfg.topology.contexts_per_core = 4;
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("contexts per core"), "{err}");
        let mut cfg = SimConfig::for_workload(w, PolicyKind::Icount);
        cfg.topology.l2_clusters = 2;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn builders_override() {
        let w = Workload::by_name("2W1").unwrap();
        let cfg = SimConfig::for_workload(w, PolicyKind::Icount)
            .with_cycles(42)
            .with_seed(7)
            .with_watchdog(1000);
        assert_eq!(cfg.cycles, 42);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.watchdog_cycles, 1000);
    }

    #[test]
    fn watchdog_defaults_on() {
        let w = Workload::by_name("2W1").unwrap();
        let cfg = SimConfig::for_workload(w, PolicyKind::Icount);
        assert_eq!(cfg.watchdog_cycles, DEFAULT_WATCHDOG);
        assert!(cfg.watchdog_cycles > 0);
    }
}
