//! `smtsim` — command-line front-end to the CMP+SMT simulator.
//!
//! ```text
//! smtsim run --workload 8W3 --policy mflush --cycles 200000
//! smtsim run --benchmarks mcf,gzip,swim,crafty --policy flush-s50 --json
//! smtsim sweep --workload 8W3 --cycles 100000 --csv
//! smtsim sweep --workload 8W3 --cycles 100000 --json
//! smtsim calibrate --cycles 60000 --json
//! smtsim workloads
//! smtsim policies
//! ```

use smtsim_core::calibration::{calibrate, calibration_json, calibration_table};
use smtsim_core::report::{histogram_table, results_csv, results_json, throughput_table};
use smtsim_core::workloads::{ALL_WORKLOADS, FIG5B_WORKLOAD};
use smtsim_core::{run_sweep, SimConfig, Simulator, SweepJob, ToJson, Workload};
use smtsim_policy::PolicyKind;

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         smtsim run --workload <xWy> [--policy <p>] [--cycles N] [--seed N] [--json]\n  \
         smtsim run --benchmarks a,b,c,d [--policy <p>] [--cycles N] [--json]\n  \
         smtsim sweep --workload <xWy> [--cycles N] [--csv | --json]\n  \
         smtsim calibrate [--cycles N] [--json]\n  \
         smtsim workloads | policies\n\n\
         policies: icount, rr, brcount, l1dmisscount, adts, dcra,\n           \
         stall-sNN, stall-ns, flush-sNN, flush-ns, flush-adapt, mflush"
    );
    std::process::exit(2);
}

fn parse_policy(s: &str) -> Option<PolicyKind> {
    let s = s.to_ascii_lowercase();
    Some(match s.as_str() {
        "icount" => PolicyKind::Icount,
        "rr" | "roundrobin" => PolicyKind::RoundRobin,
        "brcount" => PolicyKind::Brcount,
        "l1dmisscount" | "misscount" => PolicyKind::L1dMissCount,
        "adts" => PolicyKind::Adts,
        "dcra" => PolicyKind::Dcra,
        "flush-ns" => PolicyKind::FlushNonSpec,
        "stall-ns" => PolicyKind::StallNonSpec,
        "mflush" => PolicyKind::Mflush,
        "flush-adapt" | "adaptive" => PolicyKind::FlushAdaptive,
        _ => {
            if let Some(x) = s.strip_prefix("flush-s") {
                PolicyKind::FlushSpec(x.parse().ok()?)
            } else if let Some(x) = s.strip_prefix("stall-s") {
                PolicyKind::StallSpec(x.parse().ok()?)
            } else {
                return None;
            }
        }
    })
}

struct Args {
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(args: &[String]) -> Self {
        let mut flags = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = if it
                    .peek()
                    .map(|v| !v.starts_with("--"))
                    .unwrap_or(false)
                {
                    it.next().unwrap().clone()
                } else {
                    String::from("true")
                };
                flags.push((name.to_string(), value));
            } else {
                eprintln!("unexpected argument {a}");
                usage();
            }
        }
        Args { flags }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn get_u64(&self, name: &str, default: u64) -> u64 {
        self.get(name)
            .map(|v| v.parse().unwrap_or_else(|_| {
                eprintln!("bad value for --{name}: {v}");
                usage();
            }))
            .unwrap_or(default)
    }

    fn has(&self, name: &str) -> bool {
        self.get(name).is_some()
    }
}

fn build_config(args: &Args, policy: PolicyKind) -> SimConfig {
    if let Some(wl) = args.get("workload") {
        let w = Workload::by_name(wl).unwrap_or_else(|| {
            eprintln!("unknown workload {wl} (try `smtsim workloads`)");
            std::process::exit(2);
        });
        SimConfig::for_workload(w, policy)
    } else if let Some(list) = args.get("benchmarks") {
        let names: Vec<&str> = list.split(',').collect();
        if !names.len().is_multiple_of(2) {
            eprintln!("need an even number of benchmarks (2 per core)");
            std::process::exit(2);
        }
        SimConfig::for_benchmarks(&names, policy)
    } else {
        eprintln!("need --workload or --benchmarks");
        usage();
    }
}

fn cmd_run(args: &Args) {
    let policy = args
        .get("policy")
        .map(|p| {
            parse_policy(p).unwrap_or_else(|| {
                eprintln!("unknown policy {p}");
                usage();
            })
        })
        .unwrap_or(PolicyKind::Mflush);
    let cfg = build_config(args, policy)
        .with_cycles(args.get_u64("cycles", smtsim_core::config::DEFAULT_CYCLES))
        .with_seed(args.get_u64("seed", 0x5eed));
    if let Err(e) = cfg.validate() {
        eprintln!("invalid configuration: {e}");
        std::process::exit(2);
    }
    let workload = cfg.benchmarks.join(",");
    let r = Simulator::build(&cfg).run();
    if args.has("json") {
        println!("{}", r.to_json());
        return;
    }
    println!("workload   {workload}");
    println!("policy     {}", r.policy);
    println!("cycles     {}", r.cycles);
    println!("throughput {:.4} IPC ({} committed)", r.throughput(), r.total_committed());
    for (i, ipc) in r.per_thread_ipc().iter().enumerate() {
        println!("  thread {i} ({}) IPC {ipc:.4}", cfg.benchmarks[i]);
    }
    let e = r.energy();
    println!(
        "flushes    {} ({} instructions refetched, {:.1} eu wasted, ratio {:.4})",
        r.total_flushes(),
        e.flush_squashed_total(),
        e.wasted_energy(),
        e.waste_ratio()
    );
    println!("L2 hit time distribution:");
    print!("{}", histogram_table(&r.l2_hit_hist));
}

fn cmd_sweep(args: &Args) {
    let cycles = args.get_u64("cycles", smtsim_core::config::DEFAULT_CYCLES);
    let policies = [
        PolicyKind::Icount,
        PolicyKind::FlushSpec(30),
        PolicyKind::FlushSpec(100),
        PolicyKind::FlushNonSpec,
        PolicyKind::StallSpec(30),
        PolicyKind::Mflush,
        PolicyKind::Dcra,
    ];
    let base = build_config(args, PolicyKind::Icount).with_cycles(cycles);
    let jobs: Vec<SweepJob> = policies
        .iter()
        .map(|p| {
            let mut cfg = base.clone();
            cfg.policy = *p;
            SweepJob::new(p.label(), cfg)
        })
        .collect();
    let out = run_sweep(&jobs, 0);
    let results: Vec<&smtsim_core::SimResult> = out.iter().map(|(_, r)| r).collect();
    let labels: Vec<&str> = out.iter().map(|(l, _)| l.as_str()).collect();
    let wl = base.benchmarks.join("+");
    if args.has("json") {
        println!("{}", results_json(&[(wl.as_str(), results)]));
    } else if args.has("csv") {
        print!("{}", results_csv(&[(wl.as_str(), results)]));
    } else {
        print!("{}", throughput_table(&labels, &[(wl.as_str(), results)]));
    }
}

fn cmd_calibrate(args: &Args) {
    let cycles = args.get_u64("cycles", 60_000);
    let rows = calibrate(cycles, 0);
    if args.has("json") {
        println!("{}", calibration_json(&rows));
    } else {
        print!("{}", calibration_table(&rows));
    }
}

fn cmd_workloads() {
    for w in ALL_WORKLOADS.iter().chain([&FIG5B_WORKLOAD]) {
        println!(
            "{:<16} {} threads / {} cores: {}",
            w.name,
            w.threads(),
            w.cores(),
            w.benchmark_names().join(", ")
        );
    }
}

fn cmd_policies() {
    for p in [
        PolicyKind::Icount,
        PolicyKind::RoundRobin,
        PolicyKind::Brcount,
        PolicyKind::L1dMissCount,
        PolicyKind::Adts,
        PolicyKind::Dcra,
        PolicyKind::StallSpec(30),
        PolicyKind::StallNonSpec,
        PolicyKind::FlushSpec(30),
        PolicyKind::FlushSpec(100),
        PolicyKind::FlushNonSpec,
        PolicyKind::FlushAdaptive,
        PolicyKind::Mflush,
    ] {
        println!("{}", p.label());
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else { usage() };
    let rest = Args::parse(&argv[1..]);
    match cmd.as_str() {
        "run" => cmd_run(&rest),
        "sweep" => cmd_sweep(&rest),
        "calibrate" => cmd_calibrate(&rest),
        "workloads" => cmd_workloads(),
        "policies" => cmd_policies(),
        _ => usage(),
    }
}
