//! Hand-rolled JSON emission.
//!
//! The workspace carries no external crates, so result/report/figure
//! data is serialised by this small writer instead of `serde`. The
//! format choices are pinned down because same-seed runs must produce
//! **byte-identical** JSON (the determinism bar in DESIGN.md §9):
//!
//! * object fields are emitted in declaration order — no maps, no
//!   reordering;
//! * floats use Rust's shortest-roundtrip `Display` (stable across
//!   platforms and compiler versions); non-finite floats become `null`;
//! * strings escape `"`, `\`, and all control characters below `0x20`
//!   (`\n`/`\r`/`\t`/`\b`/`\f` short forms, `\u00XX` otherwise);
//! * no insignificant whitespace.
//!
//! Implement [`ToJson`] for a type by opening a [`JsonObject`] (or
//! writing a scalar/array directly) into the output string.

use crate::calibration::CalRow;
use crate::config::SimConfig;
use crate::result::SimResult;
use smtsim_cpu::{CoreStats, ThreadStats};
use smtsim_energy::EnergyAccount;
use smtsim_mem::{CoreMemStats, LatencyHistogram, MemStats};

/// Types that can render themselves as a JSON value.
pub trait ToJson {
    /// Append this value's JSON rendering to `out`.
    fn write_json(&self, out: &mut String);

    /// Convenience: render into a fresh string.
    fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_json(&mut s);
        s
    }
}

/// Escape and quote a string into `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Incremental `{...}` builder that handles commas and key quoting.
pub struct JsonObject<'a> {
    out: &'a mut String,
    first: bool,
}

impl<'a> JsonObject<'a> {
    /// Open an object into `out`.
    pub fn begin(out: &'a mut String) -> Self {
        out.push('{');
        JsonObject { out, first: true }
    }

    /// Emit one `"name":value` field.
    pub fn field(&mut self, name: &str, value: &dyn ToJson) -> &mut Self {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        write_escaped(self.out, name);
        self.out.push(':');
        value.write_json(self.out);
        self
    }

    /// Close the object.
    pub fn end(self) {
        self.out.push('}');
    }
}

macro_rules! int_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn write_json(&self, out: &mut String) {
                out.push_str(itoa_buf(*self as i128).as_str());
            }
        }
    )*};
}

int_to_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer formatting without a heap allocation per call.
fn itoa_buf(v: i128) -> String {
    // Plain `to_string` is already allocation-minimal; kept behind one
    // function so a faster path could slot in without touching callers.
    v.to_string()
}

impl ToJson for f64 {
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            // Shortest-roundtrip decimal; always re-reads as this bit
            // pattern. JSON has no NaN/Infinity, those become null.
            let s = format!("{self}");
            out.push_str(&s);
            // `Display` prints integral floats without a dot ("2"); that
            // is valid JSON but would re-parse as an integer. Keep the
            // type explicit.
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        } else {
            out.push_str("null");
        }
    }
}

impl ToJson for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl ToJson for str {
    fn write_json(&self, out: &mut String) {
        write_escaped(out, self);
    }
}

impl ToJson for String {
    fn write_json(&self, out: &mut String) {
        write_escaped(out, self);
    }
}

impl<T: ToJson> ToJson for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.write_json(out);
        }
        out.push(']');
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn write_json(&self, out: &mut String) {
        (*self).write_json(out);
    }
}

// ---------------------------------------------------------------------
// Domain types. `ToJson` is local to this crate, so implementing it for
// the component crates' types here is fine (and keeps the serialisation
// policy in one place).
// ---------------------------------------------------------------------

impl ToJson for EnergyAccount {
    fn write_json(&self, out: &mut String) {
        let mut o = JsonObject::begin(out);
        o.field("committed", &self.committed())
            .field("flush_squashed", &self.flush_squashed_by_stage())
            .field("branch_squashed", &self.branch_squashed_by_stage())
            .field("wasted_energy", &self.wasted_energy())
            .field("waste_ratio", &self.waste_ratio());
        o.end();
    }
}

impl ToJson for ThreadStats {
    fn write_json(&self, out: &mut String) {
        let mut o = JsonObject::begin(out);
        o.field("committed", &self.committed)
            .field("fetched", &self.fetched)
            .field("branches", &self.branches)
            .field("mispredicts", &self.mispredicts)
            .field("loads_issued", &self.loads_issued)
            .field("flushes", &self.flushes)
            .field("energy", &self.energy);
        o.end();
    }
}

impl ToJson for CoreStats {
    fn write_json(&self, out: &mut String) {
        let mut o = JsonObject::begin(out);
        o.field("threads", &self.threads)
            .field("fetch_active_cycles", &self.fetch_active_cycles)
            .field("iq_full_stalls", &self.iq_full_stalls)
            .field("reg_full_stalls", &self.reg_full_stalls)
            .field("rob_full_stalls", &self.rob_full_stalls)
            .field("mshr_retries", &self.mshr_retries)
            .field("flushes_executed", &self.flushes_executed)
            .field("stalls_executed", &self.stalls_executed)
            .field("store_forwards", &self.store_forwards);
        o.end();
    }
}

impl ToJson for CoreMemStats {
    fn write_json(&self, out: &mut String) {
        let mut o = JsonObject::begin(out);
        o.field("ifetches", &self.ifetches)
            .field("ifetch_l1_misses", &self.ifetch_l1_misses)
            .field("loads", &self.loads)
            .field("load_l1_misses", &self.load_l1_misses)
            .field("stores", &self.stores)
            .field("store_l1_misses", &self.store_l1_misses)
            .field("l2_hits", &self.l2_hits)
            .field("l2_misses", &self.l2_misses)
            .field("itlb_misses", &self.itlb_misses)
            .field("dtlb_misses", &self.dtlb_misses)
            .field("mshr_merges", &self.mshr_merges)
            .field("mshr_full_stalls", &self.mshr_full_stalls)
            .field("writebacks", &self.writebacks)
            .field("prefetches", &self.prefetches);
        o.end();
    }
}

impl ToJson for MemStats {
    fn write_json(&self, out: &mut String) {
        let mut o = JsonObject::begin(out);
        o.field("cores", &self.cores)
            .field("l2_hit_rate", &self.l2_hit_rate());
        o.end();
    }
}

impl ToJson for LatencyHistogram {
    fn write_json(&self, out: &mut String) {
        let mut o = JsonObject::begin(out);
        o.field("bin_width", &self.bin_width())
            .field("bins", &self.bin_counts())
            .field("overflow", &self.overflow())
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("min", &self.min())
            .field("max", &self.max());
        o.end();
    }
}

impl ToJson for SimResult {
    fn write_json(&self, out: &mut String) {
        let mut o = JsonObject::begin(out);
        o.field("policy", &self.policy)
            .field("workload", &self.workload)
            .field("cycles", &self.cycles)
            .field("throughput", &self.throughput())
            .field("hmean_ipc", &self.hmean_ipc())
            .field("per_thread_ipc", &self.per_thread_ipc())
            .field("total_flushes", &self.total_flushes())
            .field("cores", &self.cores)
            .field("mem", &self.mem)
            .field("l2_hit_hist", &self.l2_hit_hist)
            .field("energy", &self.energy());
        o.end();
    }
}

impl ToJson for CalRow {
    fn write_json(&self, out: &mut String) {
        let mut o = JsonObject::begin(out);
        o.field("name", &self.name)
            .field("ipc_per_thread", &self.ipc_per_thread)
            .field("branch_accuracy", &self.branch_accuracy)
            .field("l1d_miss_rate", &self.l1d_miss_rate)
            .field("l2_hit_rate", &self.l2_hit_rate)
            .field("dtlb_miss_rate", &self.dtlb_miss_rate);
        o.end();
    }
}

impl ToJson for SimConfig {
    fn write_json(&self, out: &mut String) {
        let mut o = JsonObject::begin(out);
        o.field("policy", &self.policy.label())
            .field("benchmarks", &self.benchmarks)
            .field("cycles", &self.cycles)
            .field("seed", &self.seed)
            .field("warmup", &self.warmup)
            .field("cores", &self.cores())
            .field("contexts_per_core", &self.core.contexts)
            .field("l2_banks", &self.mem.l2_banks)
            .field("l2_clusters", &self.mem.l2_clusters);
        o.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(42u64.to_json(), "42");
        assert_eq!((-7i64).to_json(), "-7");
        assert_eq!(true.to_json(), "true");
        assert_eq!(1.5f64.to_json(), "1.5");
        assert_eq!(2.0f64.to_json(), "2.0");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(f64::INFINITY.to_json(), "null");
        assert_eq!("hi".to_json(), "\"hi\"");
    }

    #[test]
    fn strings_escape_specials() {
        assert_eq!(
            "a\"b\\c\nd\te\u{1}".to_json(),
            "\"a\\\"b\\\\c\\nd\\te\\u0001\""
        );
    }

    #[test]
    fn collections_render() {
        assert_eq!(vec![1u64, 2, 3].to_json(), "[1,2,3]");
        assert_eq!([1.5f64, 0.25].to_json(), "[1.5,0.25]");
        assert_eq!(Vec::<u64>::new().to_json(), "[]");
        assert_eq!(Some(5u32).to_json(), "5");
        assert_eq!(None::<u32>.to_json(), "null");
    }

    #[test]
    fn objects_comma_correctly() {
        let mut s = String::new();
        let mut o = JsonObject::begin(&mut s);
        o.field("a", &1u64).field("b", &"x");
        o.end();
        assert_eq!(s, "{\"a\":1,\"b\":\"x\"}");

        let mut s = String::new();
        JsonObject::begin(&mut s).end();
        assert_eq!(s, "{}");
    }

    #[test]
    fn float_roundtrip_is_shortest_form() {
        // The throughput of a 100-commit / 300-cycle run.
        let v = 100.0f64 / 300.0;
        let j = v.to_json();
        assert_eq!(j.parse::<f64>().unwrap(), v);
        assert_eq!(j, "0.3333333333333333");
    }
}
