//! Hand-rolled JSON emission.
//!
//! The workspace carries no external crates, so result/report/figure
//! data is serialised by this small writer instead of `serde`. The
//! format choices are pinned down because same-seed runs must produce
//! **byte-identical** JSON (the determinism bar in DESIGN.md §9):
//!
//! * object fields are emitted in declaration order — no maps, no
//!   reordering;
//! * floats use Rust's shortest-roundtrip `Display` (stable across
//!   platforms and compiler versions); non-finite floats become `null`;
//! * strings escape `"`, `\`, and all control characters below `0x20`
//!   (`\n`/`\r`/`\t`/`\b`/`\f` short forms, `\u00XX` otherwise);
//! * no insignificant whitespace.
//!
//! Implement [`ToJson`] for a type by opening a [`JsonObject`] (or
//! writing a scalar/array directly) into the output string.

use crate::calibration::CalRow;
use crate::config::SimConfig;
use crate::result::SimResult;
use smtsim_cpu::{CoreStats, ThreadStats};
use smtsim_energy::EnergyAccount;
use smtsim_mem::{CoreMemStats, LatencyHistogram, MemStats};

/// Types that can render themselves as a JSON value.
pub trait ToJson {
    /// Append this value's JSON rendering to `out`.
    fn write_json(&self, out: &mut String);

    /// Convenience: render into a fresh string.
    fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_json(&mut s);
        s
    }
}

/// Escape and quote a string into `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Incremental `{...}` builder that handles commas and key quoting.
pub struct JsonObject<'a> {
    out: &'a mut String,
    first: bool,
}

impl<'a> JsonObject<'a> {
    /// Open an object into `out`.
    pub fn begin(out: &'a mut String) -> Self {
        out.push('{');
        JsonObject { out, first: true }
    }

    /// Emit one `"name":value` field.
    pub fn field(&mut self, name: &str, value: &dyn ToJson) -> &mut Self {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        write_escaped(self.out, name);
        self.out.push(':');
        value.write_json(self.out);
        self
    }

    /// Close the object.
    pub fn end(self) {
        self.out.push('}');
    }
}

macro_rules! int_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn write_json(&self, out: &mut String) {
                out.push_str(itoa_buf(*self as i128).as_str());
            }
        }
    )*};
}

int_to_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer formatting without a heap allocation per call.
fn itoa_buf(v: i128) -> String {
    // Plain `to_string` is already allocation-minimal; kept behind one
    // function so a faster path could slot in without touching callers.
    v.to_string()
}

impl ToJson for f64 {
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            // Shortest-roundtrip decimal; always re-reads as this bit
            // pattern. JSON has no NaN/Infinity, those become null.
            let s = format!("{self}");
            out.push_str(&s);
            // `Display` prints integral floats without a dot ("2"); that
            // is valid JSON but would re-parse as an integer. Keep the
            // type explicit.
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        } else {
            out.push_str("null");
        }
    }
}

impl ToJson for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl ToJson for str {
    fn write_json(&self, out: &mut String) {
        write_escaped(out, self);
    }
}

impl ToJson for String {
    fn write_json(&self, out: &mut String) {
        write_escaped(out, self);
    }
}

impl<T: ToJson> ToJson for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.write_json(out);
        }
        out.push(']');
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn write_json(&self, out: &mut String) {
        (*self).write_json(out);
    }
}

// ---------------------------------------------------------------------
// Parsing — the inverse direction, used by the sweep journal to replay
// recorded results. The journal replays byte-identically because every
// *raw* field in our JSON is an integer, bool or string; floats only
// appear as derived values that the emitters recompute from raw fields.
// ---------------------------------------------------------------------

/// A parsed JSON value. Objects keep insertion order in a `Vec` (no
/// maps — rule D1), which also preserves duplicate-key detection as a
/// non-goal: last write wins is never needed because we only parse our
/// own emitter's output.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer without a fractional part or exponent.
    UInt(u64),
    /// Negative integer without a fractional part or exponent.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// String (escapes decoded).
    Str(String),
    /// Array.
    Arr(Vec<JsonValue>),
    /// Object, fields in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Look up a field of an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a float, widening integers (all JSON numbers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::UInt(v) => Some(*v as f64),
            JsonValue::Int(v) => Some(*v as f64),
            JsonValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Required `u64` field of an object.
    pub fn req_u64(&self, key: &str) -> Result<u64, String> {
        self.get(key)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("missing or non-integer field {key:?}"))
    }

    /// Required bool field of an object.
    pub fn req_bool(&self, key: &str) -> Result<bool, String> {
        self.get(key)
            .and_then(JsonValue::as_bool)
            .ok_or_else(|| format!("missing or non-bool field {key:?}"))
    }

    /// Required string field of an object.
    pub fn req_str(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("missing or non-string field {key:?}"))
    }

    /// Required array field of an object.
    pub fn req_arr(&self, key: &str) -> Result<&[JsonValue], String> {
        self.get(key)
            .and_then(JsonValue::as_arr)
            .ok_or_else(|| format!("missing or non-array field {key:?}"))
    }

    /// Required `Option<u64>` field: `null` maps to `None`.
    pub fn req_opt_u64(&self, key: &str) -> Result<Option<u64>, String> {
        match self.get(key) {
            Some(JsonValue::Null) => Ok(None),
            Some(v) => v
                .as_u64()
                .map(Some)
                .ok_or_else(|| format!("non-integer field {key:?}")),
            None => Err(format!("missing field {key:?}")),
        }
    }
}

/// Parse one complete JSON document. Trailing non-whitespace is an
/// error.
pub fn parse_json(src: &str) -> Result<JsonValue, String> {
    let bytes = src.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect_byte(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    match bytes.get(*pos) {
        Some(&b) if b == want => {
            *pos += 1;
            Ok(())
        }
        Some(&b) => Err(format!(
            "expected {:?} at byte {}, found {:?}",
            want as char, *pos, b as char
        )),
        None => Err(format!("expected {:?} at byte {}, found end", want as char, *pos)),
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", JsonValue::Null),
        Some(b) if *b == b'-' || b.is_ascii_digit() => parse_number(bytes, pos),
        Some(b) => Err(format!("unexpected {:?} at byte {}", *b as char, *pos)),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect_byte(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect_byte(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect_byte(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect_byte(bytes, pos, b'"')?;
    let mut s = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(s);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        // Our emitter never writes surrogates (it only
                        // escapes control bytes), but decode pairs
                        // anyway so hand-edited journals still parse.
                        let c = if (0xd800..0xdc00).contains(&code) {
                            if bytes.get(*pos + 1..*pos + 3) != Some(b"\\u") {
                                return Err("lone high surrogate".into());
                            }
                            let low = parse_hex4(bytes, *pos + 3)?;
                            *pos += 6;
                            if !(0xdc00..0xe000).contains(&low) {
                                return Err("invalid low surrogate".into());
                            }
                            0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00)
                        } else {
                            code
                        };
                        s.push(
                            char::from_u32(c)
                                .ok_or_else(|| format!("invalid codepoint {c:#x}"))?,
                        );
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one whole UTF-8 character (input is &str, so
                // boundaries are valid).
                let rest = &bytes[*pos..];
                let tail = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                let c = tail.chars().next().ok_or("unterminated string")?;
                s.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let chunk = bytes
        .get(at..at + 4)
        .ok_or("truncated \\u escape")?;
    let text = std::str::from_utf8(chunk).map_err(|e| e.to_string())?;
    u32::from_str_radix(text, 16).map_err(|e| e.to_string())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while bytes
        .get(*pos)
        .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    let integral = !text.contains(['.', 'e', 'E']);
    if integral {
        if let Some(digits) = text.strip_prefix('-') {
            if let Ok(v) = digits.parse::<u64>() {
                if v == 0 {
                    // "-0" — keep the integer lattice simple.
                    return Ok(JsonValue::UInt(0));
                }
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(JsonValue::Int(v));
            }
        } else if let Ok(v) = text.parse::<u64>() {
            return Ok(JsonValue::UInt(v));
        }
    }
    text.parse::<f64>()
        .map(JsonValue::Float)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

// ---------------------------------------------------------------------
// Domain types. `ToJson` is local to this crate, so implementing it for
// the component crates' types here is fine (and keeps the serialisation
// policy in one place).
// ---------------------------------------------------------------------

impl ToJson for EnergyAccount {
    fn write_json(&self, out: &mut String) {
        let mut o = JsonObject::begin(out);
        o.field("committed", &self.committed())
            .field("flush_squashed", &self.flush_squashed_by_stage())
            .field("branch_squashed", &self.branch_squashed_by_stage())
            .field("wasted_energy", &self.wasted_energy())
            .field("waste_ratio", &self.waste_ratio());
        o.end();
    }
}

impl ToJson for ThreadStats {
    fn write_json(&self, out: &mut String) {
        let mut o = JsonObject::begin(out);
        o.field("committed", &self.committed)
            .field("fetched", &self.fetched)
            .field("branches", &self.branches)
            .field("mispredicts", &self.mispredicts)
            .field("loads_issued", &self.loads_issued)
            .field("flushes", &self.flushes)
            .field("energy", &self.energy);
        o.end();
    }
}

impl ToJson for CoreStats {
    fn write_json(&self, out: &mut String) {
        let mut o = JsonObject::begin(out);
        o.field("threads", &self.threads)
            .field("fetch_active_cycles", &self.fetch_active_cycles)
            .field("iq_full_stalls", &self.iq_full_stalls)
            .field("reg_full_stalls", &self.reg_full_stalls)
            .field("rob_full_stalls", &self.rob_full_stalls)
            .field("mshr_retries", &self.mshr_retries)
            .field("flushes_executed", &self.flushes_executed)
            .field("stalls_executed", &self.stalls_executed)
            .field("store_forwards", &self.store_forwards);
        o.end();
    }
}

impl ToJson for CoreMemStats {
    fn write_json(&self, out: &mut String) {
        let mut o = JsonObject::begin(out);
        o.field("ifetches", &self.ifetches)
            .field("ifetch_l1_misses", &self.ifetch_l1_misses)
            .field("loads", &self.loads)
            .field("load_l1_misses", &self.load_l1_misses)
            .field("stores", &self.stores)
            .field("store_l1_misses", &self.store_l1_misses)
            .field("l2_hits", &self.l2_hits)
            .field("l2_misses", &self.l2_misses)
            .field("itlb_misses", &self.itlb_misses)
            .field("dtlb_misses", &self.dtlb_misses)
            .field("mshr_merges", &self.mshr_merges)
            .field("mshr_full_stalls", &self.mshr_full_stalls)
            .field("writebacks", &self.writebacks)
            .field("prefetches", &self.prefetches);
        o.end();
    }
}

impl ToJson for MemStats {
    fn write_json(&self, out: &mut String) {
        let mut o = JsonObject::begin(out);
        o.field("cores", &self.cores)
            .field("l2_hit_rate", &self.l2_hit_rate());
        o.end();
    }
}

impl ToJson for LatencyHistogram {
    fn write_json(&self, out: &mut String) {
        let mut o = JsonObject::begin(out);
        o.field("bin_width", &self.bin_width())
            .field("bins", &self.bin_counts())
            .field("overflow", &self.overflow())
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("min", &self.min())
            .field("max", &self.max());
        o.end();
    }
}

impl ToJson for SimResult {
    fn write_json(&self, out: &mut String) {
        let mut o = JsonObject::begin(out);
        o.field("policy", &self.policy)
            .field("workload", &self.workload)
            .field("cycles", &self.cycles)
            .field("throughput", &self.throughput())
            .field("hmean_ipc", &self.hmean_ipc())
            .field("per_thread_ipc", &self.per_thread_ipc())
            .field("total_flushes", &self.total_flushes())
            .field("cores", &self.cores)
            .field("mem", &self.mem)
            .field("l2_hit_hist", &self.l2_hit_hist)
            .field("energy", &self.energy());
        o.end();
    }
}

impl ToJson for CalRow {
    fn write_json(&self, out: &mut String) {
        let mut o = JsonObject::begin(out);
        o.field("name", &self.name)
            .field("ipc_per_thread", &self.ipc_per_thread)
            .field("branch_accuracy", &self.branch_accuracy)
            .field("l1d_miss_rate", &self.l1d_miss_rate)
            .field("l2_hit_rate", &self.l2_hit_rate)
            .field("dtlb_miss_rate", &self.dtlb_miss_rate);
        o.end();
    }
}

impl ToJson for SimConfig {
    fn write_json(&self, out: &mut String) {
        let mut o = JsonObject::begin(out);
        o.field("policy", &self.policy.label())
            .field("benchmarks", &self.benchmarks)
            .field("cycles", &self.cycles)
            .field("seed", &self.seed)
            .field("warmup", &self.warmup)
            .field("watchdog_cycles", &self.watchdog_cycles)
            .field("skip_ahead", &self.skip_ahead)
            .field("cores", &self.cores())
            // validate() pins core.contexts == topology.contexts_per_core;
            // emitting the core-side field keeps `core` in the report.
            .field("contexts_per_core", &self.core.contexts)
            .field("l2_banks", &self.mem.l2_banks)
            .field("l2_clusters", &self.topology.l2_clusters)
            .field("fidelity", &self.topology.fidelity.label());
        o.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(42u64.to_json(), "42");
        assert_eq!((-7i64).to_json(), "-7");
        assert_eq!(true.to_json(), "true");
        assert_eq!(1.5f64.to_json(), "1.5");
        assert_eq!(2.0f64.to_json(), "2.0");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(f64::INFINITY.to_json(), "null");
        assert_eq!("hi".to_json(), "\"hi\"");
    }

    #[test]
    fn strings_escape_specials() {
        assert_eq!(
            "a\"b\\c\nd\te\u{1}".to_json(),
            "\"a\\\"b\\\\c\\nd\\te\\u0001\""
        );
    }

    #[test]
    fn collections_render() {
        assert_eq!(vec![1u64, 2, 3].to_json(), "[1,2,3]");
        assert_eq!([1.5f64, 0.25].to_json(), "[1.5,0.25]");
        assert_eq!(Vec::<u64>::new().to_json(), "[]");
        assert_eq!(Some(5u32).to_json(), "5");
        assert_eq!(None::<u32>.to_json(), "null");
    }

    #[test]
    fn objects_comma_correctly() {
        let mut s = String::new();
        let mut o = JsonObject::begin(&mut s);
        o.field("a", &1u64).field("b", &"x");
        o.end();
        assert_eq!(s, "{\"a\":1,\"b\":\"x\"}");

        let mut s = String::new();
        JsonObject::begin(&mut s).end();
        assert_eq!(s, "{}");
    }

    #[test]
    fn float_roundtrip_is_shortest_form() {
        // The throughput of a 100-commit / 300-cycle run.
        let v = 100.0f64 / 300.0;
        let j = v.to_json();
        assert_eq!(j.parse::<f64>().unwrap(), v);
        assert_eq!(j, "0.3333333333333333");
    }

    #[test]
    fn parser_handles_scalars() {
        assert_eq!(parse_json("null").unwrap(), JsonValue::Null);
        assert_eq!(parse_json("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse_json("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse_json("42").unwrap(), JsonValue::UInt(42));
        assert_eq!(parse_json("-7").unwrap(), JsonValue::Int(-7));
        assert_eq!(parse_json("1.5").unwrap(), JsonValue::Float(1.5));
        assert_eq!(parse_json("2.0").unwrap(), JsonValue::Float(2.0));
        assert_eq!(
            parse_json("\"hi\"").unwrap(),
            JsonValue::Str("hi".into())
        );
    }

    #[test]
    fn parser_decodes_escapes() {
        let v = parse_json(r#""a\"b\\c\nd\te\u0001""#).unwrap();
        assert_eq!(v, JsonValue::Str("a\"b\\c\nd\te\u{1}".into()));
    }

    #[test]
    fn parser_handles_structures() {
        let v = parse_json(r#"{"a":1,"b":[true,null],"c":{"d":"x"}}"#).unwrap();
        assert_eq!(v.req_u64("a").unwrap(), 1);
        assert_eq!(
            v.req_arr("b").unwrap(),
            &[JsonValue::Bool(true), JsonValue::Null]
        );
        assert_eq!(v.get("c").unwrap().req_str("d").unwrap(), "x");
        assert!(v.get("missing").is_none());
        assert_eq!(parse_json("[]").unwrap(), JsonValue::Arr(vec![]));
        assert_eq!(parse_json("{}").unwrap(), JsonValue::Obj(vec![]));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "1 2", "\"unterminated",
            "{\"a\":1,}", "nul", "[1 2]", "\"\\q\"", "\"\\u12\"",
        ] {
            assert!(parse_json(bad).is_err(), "accepted malformed {bad:?}");
        }
    }

    #[test]
    fn parser_roundtrips_emitter_output() {
        // A shape mirroring real result JSON: nested objects, arrays,
        // nulls, floats, escapes.
        let src = r#"{"policy":"FLUSH-S100","cycles":150000,"ipc":[1.5,0.25],"min":null,"note":"a\nb"}"#;
        let v = parse_json(src).unwrap();
        assert_eq!(v.req_str("policy").unwrap(), "FLUSH-S100");
        assert_eq!(v.req_u64("cycles").unwrap(), 150000);
        assert_eq!(v.req_opt_u64("min").unwrap(), None);
        assert_eq!(v.req_str("note").unwrap(), "a\nb");
    }
}
