//! Explicit machine topology: geometry plus per-component fidelity.
//!
//! Before the pluggable-fidelity refactor (DESIGN.md §13) a
//! [`crate::config::SimConfig`]'s geometry was *implicit*: the core
//! count was derived on the fly by dividing the benchmark list length
//! by `core.contexts` (truncating!), and the L2 cluster count lived
//! only inside `MemConfig`. A [`Topology`] names that geometry up
//! front — cores, contexts per core, L2 clusters — together with the
//! fidelity each component model runs at, and validation checks the
//! rest of the configuration *against* it instead of re-deriving it.
//!
//! Build one with [`TopologyBuilder`]:
//!
//! ```
//! use smtsim_core::topology::{Fidelity, Topology};
//!
//! let t = Topology::builder()
//!     .cores(4)
//!     .contexts_per_core(2)
//!     .l2_clusters(1)
//!     .fidelity(Fidelity::parse("mem=fast,core=approx").unwrap())
//!     .build()
//!     .unwrap();
//! assert_eq!(t.threads(), 8);
//! ```

pub use smtsim_cpu::CoreFidelity;
pub use smtsim_mem::MemFidelity;

/// Which model implementation each swappable component runs at.
///
/// The default — detailed memory and detailed cores — is the
/// golden-figure configuration and reproduces pre-refactor results
/// byte for byte (`crates/core/tests/fidelity.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Fidelity {
    /// Memory-hierarchy model ([`smtsim_mem::MemoryModel`] variant).
    pub mem: MemFidelity,
    /// Core backend ([`smtsim_cpu::CoreBackend`] variant).
    pub core: CoreFidelity,
}

impl Fidelity {
    /// Both components detailed: the golden-figure configuration.
    pub fn detailed() -> Fidelity {
        Fidelity::default()
    }

    /// Both components reduced: the fast-forward configuration.
    pub fn fast() -> Fidelity {
        Fidelity {
            mem: MemFidelity::Fast,
            core: CoreFidelity::IpcApprox,
        }
    }

    /// `true` when any component runs below detailed fidelity.
    pub fn is_reduced(&self) -> bool {
        *self != Fidelity::detailed()
    }

    /// Canonical spelling, accepted back by [`Fidelity::parse`]:
    /// `"mem=detailed,core=approx"`.
    pub fn label(&self) -> String {
        format!("mem={},core={}", self.mem.as_str(), self.core.as_str())
    }

    /// Parse a `--fidelity` override: comma-separated `mem=<f>` /
    /// `core=<f>` assignments in any order, each optional (omitted
    /// components stay detailed). Unknown components or fidelity names
    /// are errors, with the valid spellings named in the message.
    pub fn parse(s: &str) -> Result<Fidelity, String> {
        let mut out = Fidelity::default();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (component, value) = part
                .split_once('=')
                .ok_or_else(|| format!("bad fidelity assignment '{part}' (want component=value, e.g. mem=fast)"))?;
            match component {
                "mem" => {
                    out.mem = MemFidelity::parse(value).ok_or_else(|| {
                        format!("unknown mem fidelity '{value}' (want detailed or fast)")
                    })?;
                }
                "core" => {
                    out.core = CoreFidelity::parse(value).ok_or_else(|| {
                        format!("unknown core fidelity '{value}' (want detailed or approx)")
                    })?;
                }
                other => {
                    return Err(format!(
                        "unknown fidelity component '{other}' (want mem or core)"
                    ));
                }
            }
        }
        Ok(out)
    }

    /// Pull a `--fidelity <value>` / `--fidelity=<value>` override out
    /// of a positional argument list, leaving the remaining arguments
    /// in place. Absent flag → detailed. Shared by the examples, which
    /// otherwise parse positionally; the `smtsim` CLI has its own
    /// flag parser and calls [`Fidelity::parse`] directly.
    pub fn extract_from_args(args: &mut Vec<String>) -> Result<Fidelity, String> {
        let mut i = 0;
        while i < args.len() {
            if let Some(v) = args[i].strip_prefix("--fidelity=") {
                let f = Fidelity::parse(v)?;
                args.remove(i);
                return Ok(f);
            }
            if args[i] == "--fidelity" {
                if i + 1 >= args.len() {
                    return Err("--fidelity needs a value (e.g. mem=fast,core=approx)".into());
                }
                let f = Fidelity::parse(&args[i + 1])?;
                args.drain(i..i + 2);
                return Ok(f);
            }
            i += 1;
        }
        Ok(Fidelity::detailed())
    }
}

/// The machine's explicit geometry and per-component fidelity.
///
/// Constructed by [`TopologyBuilder`] (which validates) or the
/// [`Topology::paper`] shorthand; carried by
/// [`crate::config::SimConfig`], whose `validate` cross-checks the
/// core/mem configs and the benchmark list against it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Number of SMT cores.
    pub cores: u32,
    /// Hardware contexts (threads) per core; must match
    /// `CoreConfig::contexts`.
    pub contexts_per_core: u32,
    /// L2 clusters the cores are partitioned over; must match
    /// `MemConfig::l2_clusters` and divide `cores`.
    pub l2_clusters: u32,
    /// Fidelity each component model runs at.
    pub fidelity: Fidelity,
}

impl Topology {
    /// The paper's Fig. 1 geometry for `cores` two-context cores on
    /// one shared L2, at detailed fidelity.
    pub fn paper(cores: u32) -> Topology {
        Topology {
            cores,
            contexts_per_core: 2,
            l2_clusters: 1,
            fidelity: Fidelity::detailed(),
        }
    }

    /// Start building a topology (defaults to [`Topology::paper`] with
    /// one core).
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder {
            topo: Topology::paper(1),
        }
    }

    /// Total hardware threads.
    pub fn threads(&self) -> usize {
        self.cores as usize * self.contexts_per_core as usize
    }

    /// Check the geometry's internal consistency. Every violation is a
    /// plain-language `Err` (never a panic): the driver wraps it in
    /// `SimError::InvalidConfig`.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err("topology: cores == 0".into());
        }
        if self.contexts_per_core == 0 {
            return Err("topology: contexts_per_core == 0".into());
        }
        if self.l2_clusters == 0 {
            return Err("topology: l2_clusters == 0".into());
        }
        if !self.cores.is_multiple_of(self.l2_clusters) {
            return Err(format!(
                "topology: {} cores cannot be split evenly over {} L2 clusters",
                self.cores, self.l2_clusters
            ));
        }
        Ok(())
    }
}

/// Builder for [`Topology`]; `build` validates, so an invalid geometry
/// is caught at construction rather than inside the simulator.
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    topo: Topology,
}

impl TopologyBuilder {
    /// Set the number of SMT cores.
    pub fn cores(mut self, cores: u32) -> Self {
        self.topo.cores = cores;
        self
    }

    /// Set the hardware contexts per core.
    pub fn contexts_per_core(mut self, contexts: u32) -> Self {
        self.topo.contexts_per_core = contexts;
        self
    }

    /// Set the number of L2 clusters.
    pub fn l2_clusters(mut self, clusters: u32) -> Self {
        self.topo.l2_clusters = clusters;
        self
    }

    /// Set the per-component fidelity.
    pub fn fidelity(mut self, fidelity: Fidelity) -> Self {
        self.topo.fidelity = fidelity;
        self
    }

    /// Validate and return the topology.
    pub fn build(self) -> Result<Topology, String> {
        self.topo.validate()?;
        Ok(self.topo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topology_validates() {
        for cores in [1, 2, 3, 4] {
            let t = Topology::paper(cores);
            t.validate().unwrap();
            assert_eq!(t.threads(), cores as usize * 2);
        }
    }

    #[test]
    fn builder_rejects_bad_geometry() {
        assert!(Topology::builder().cores(0).build().is_err());
        assert!(Topology::builder().cores(2).contexts_per_core(0).build().is_err());
        assert!(Topology::builder().cores(2).l2_clusters(0).build().is_err());
        let err = Topology::builder().cores(3).l2_clusters(2).build().unwrap_err();
        assert!(err.contains("3 cores"), "{err}");
        assert!(Topology::builder().cores(4).l2_clusters(2).build().is_ok());
    }

    #[test]
    fn fidelity_labels_round_trip() {
        for f in [
            Fidelity::detailed(),
            Fidelity::fast(),
            Fidelity {
                mem: MemFidelity::Fast,
                core: CoreFidelity::Detailed,
            },
        ] {
            assert_eq!(Fidelity::parse(&f.label()).unwrap(), f);
        }
        assert!(!Fidelity::detailed().is_reduced());
        assert!(Fidelity::fast().is_reduced());
    }

    #[test]
    fn fidelity_parse_accepts_partial_and_rejects_unknown() {
        let f = Fidelity::parse("mem=fast").unwrap();
        assert_eq!(f.mem, MemFidelity::Fast);
        assert_eq!(f.core, CoreFidelity::Detailed);
        let f = Fidelity::parse("core=approx").unwrap();
        assert_eq!(f.mem, MemFidelity::Detailed);
        assert_eq!(f.core, CoreFidelity::IpcApprox);
        assert_eq!(Fidelity::parse("").unwrap(), Fidelity::detailed());

        assert!(Fidelity::parse("mem=warp9").unwrap_err().contains("mem fidelity"));
        assert!(Fidelity::parse("core=fast").unwrap_err().contains("core fidelity"));
        assert!(Fidelity::parse("gpu=fast").unwrap_err().contains("component"));
        assert!(Fidelity::parse("fast").unwrap_err().contains("component=value"));
    }

    #[test]
    fn extract_from_args_strips_the_flag_and_keeps_positionals() {
        let to_args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();

        let mut args = to_args(&["4W3", "--fidelity", "mem=fast,core=approx", "50000"]);
        assert_eq!(Fidelity::extract_from_args(&mut args).unwrap(), Fidelity::fast());
        assert_eq!(args, to_args(&["4W3", "50000"]));

        let mut args = to_args(&["--fidelity=core=approx", "2W1"]);
        let f = Fidelity::extract_from_args(&mut args).unwrap();
        assert_eq!(f.core, CoreFidelity::IpcApprox);
        assert_eq!(args, to_args(&["2W1"]));

        let mut args = to_args(&["4W3"]);
        assert_eq!(
            Fidelity::extract_from_args(&mut args).unwrap(),
            Fidelity::detailed()
        );
        assert_eq!(args, to_args(&["4W3"]));

        let mut args = to_args(&["--fidelity"]);
        assert!(Fidelity::extract_from_args(&mut args).unwrap_err().contains("needs a value"));
        let mut args = to_args(&["--fidelity", "mem=warp9"]);
        assert!(Fidelity::extract_from_args(&mut args).is_err());
    }
}
