//! Plain-text rendering of results, matching the paper's figures.

use crate::json::JsonObject;
use crate::result::SimResult;
use smtsim_mem::LatencyHistogram;
use std::fmt::Write;

/// Throughput comparison table: one row per workload, one column per
/// policy (the layout of Figs. 2, 3, 5 and 8).
///
/// `rows` maps a workload label to the per-policy results (all rows
/// must share the column order of `columns`).
pub fn throughput_table(columns: &[&str], rows: &[(&str, Vec<&SimResult>)]) -> String {
    let mut s = String::new();
    let _ = write!(s, "{:<18}", "workload");
    for c in columns {
        let _ = write!(s, "{c:>14}");
    }
    let _ = writeln!(s);
    for (label, results) in rows {
        let _ = write!(s, "{label:<18}");
        for r in results {
            let _ = write!(s, "{:>14.4}", r.throughput());
        }
        let _ = writeln!(s);
    }
    s
}

/// Speedup-over-baseline table (first column is the baseline).
pub fn speedup_table(columns: &[&str], rows: &[(&str, Vec<&SimResult>)]) -> String {
    let mut s = String::new();
    let _ = write!(s, "{:<18}", "workload");
    for c in &columns[1..] {
        let _ = write!(s, "{:>14}", format!("{c}/base"));
    }
    let _ = writeln!(s);
    for (label, results) in rows {
        let base = results[0];
        let _ = write!(s, "{label:<18}");
        for r in &results[1..] {
            let _ = write!(s, "{:>14.3}", r.speedup_over(base));
        }
        let _ = writeln!(s);
    }
    s
}

/// Wasted-energy table (Fig. 11): energy units + ratio per policy.
pub fn energy_table(columns: &[&str], rows: &[(&str, Vec<&SimResult>)]) -> String {
    let mut s = String::new();
    let _ = write!(s, "{:<18}", "workload");
    for c in columns {
        let _ = write!(s, "{:>16}", format!("{c} (eu)"));
    }
    let _ = writeln!(s);
    for (label, results) in rows {
        let _ = write!(s, "{label:<18}");
        for r in results {
            let _ = write!(s, "{:>16.1}", r.wasted_energy());
        }
        let _ = writeln!(s);
    }
    s
}

/// CSV export of a result grid (one row per workload×policy) for
/// external plotting: columns are
/// `workload,policy,cycles,committed,ipc,flushes,wasted_energy,waste_ratio,l2_hit_mean`.
pub fn results_csv(rows: &[(&str, Vec<&SimResult>)]) -> String {
    let mut s = String::from(
        "workload,policy,cycles,committed,ipc,flushes,wasted_energy,waste_ratio,l2_hit_mean\n",
    );
    for (label, results) in rows {
        for r in results {
            let e = r.energy();
            let _ = writeln!(
                s,
                "{label},{},{},{},{:.6},{},{:.3},{:.6},{:.3}",
                r.policy,
                r.cycles,
                r.total_committed(),
                r.throughput(),
                r.total_flushes(),
                e.wasted_energy(),
                e.waste_ratio(),
                r.l2_hit_hist.mean(),
            );
        }
    }
    s
}

/// JSON export of a result grid, mirroring [`results_csv`] row-for-row:
/// a flat array of `{"label":...,"result":{...}}` objects, where
/// `result` carries the full [`SimResult`] rendering (per-core stats,
/// memory counters, the Fig. 4 histogram, the energy ledger).
pub fn results_json(rows: &[(&str, Vec<&SimResult>)]) -> String {
    let mut s = String::from("[");
    let mut first = true;
    for (label, results) in rows {
        for r in results {
            if !first {
                s.push(',');
            }
            first = false;
            let mut o = JsonObject::begin(&mut s);
            o.field("label", label).field("result", r);
            o.end();
        }
    }
    s.push(']');
    s
}

/// ASCII horizontal bar chart: one bar per `(label, value)`, scaled to
/// `width` columns at the maximum value. Used by the figure binaries to
/// echo the paper's bar plots in the terminal.
pub fn bar_chart(rows: &[(&str, f64)], width: usize) -> String {
    let mut s = String::new();
    let max = rows.iter().map(|(_, v)| *v).fold(0.0_f64, f64::max);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, v) in rows {
        let filled = if max > 0.0 {
            ((v / max) * width as f64).round() as usize
        } else {
            0
        };
        let _ = writeln!(
            s,
            "{label:<label_w$} {value:>8} |{bar}",
            value = format!("{v:.3}"),
            bar = "█".repeat(filled),
        );
    }
    s
}

/// Histogram rendering (Fig. 4): bins as `start..end: count (pct)`.
pub fn histogram_table(h: &LatencyHistogram) -> String {
    let mut s = String::new();
    let total = h.count().max(1);
    let _ = writeln!(
        s,
        "samples={} mean={:.1} std={:.1} p50={:?} p90={:?}",
        h.count(),
        h.mean(),
        h.std_dev(),
        h.percentile(0.5),
        h.percentile(0.9)
    );
    for (start, count) in h.non_empty_bins() {
        let pct = 100.0 * count as f64 / total as f64;
        let bar = "#".repeat((pct / 2.0).ceil() as usize);
        let _ = writeln!(s, "{start:>5}+ {count:>8} ({pct:5.1}%) {bar}");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtsim_cpu::{CoreStats, ThreadStats};
    use smtsim_mem::MemStats;

    fn fake(committed: u64, cycles: u64) -> SimResult {
        SimResult {
            policy: "X".into(),
            workload: vec!["gzip".into()],
            cycles,
            cores: vec![CoreStats {
                threads: vec![ThreadStats {
                    committed,
                    ..Default::default()
                }],
                ..Default::default()
            }],
            mem: MemStats::default(),
            l2_hit_hist: LatencyHistogram::for_l2_hit_time(),
        }
    }

    #[test]
    fn throughput_table_formats() {
        let a = fake(100, 100);
        let b = fake(200, 100);
        let t = throughput_table(&["ICOUNT", "MFLUSH"], &[("2W1", vec![&a, &b])]);
        assert!(t.contains("2W1"));
        assert!(t.contains("1.0000"));
        assert!(t.contains("2.0000"));
    }

    #[test]
    fn speedup_table_uses_first_as_baseline() {
        let a = fake(100, 100);
        let b = fake(150, 100);
        let t = speedup_table(&["ICOUNT", "FLUSH-S30"], &[("2W2", vec![&a, &b])]);
        assert!(t.contains("1.500"));
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let chart = bar_chart(&[("a", 2.0), ("bb", 1.0), ("c", 0.0)], 10);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].matches('█').count(), 10);
        assert_eq!(lines[1].matches('█').count(), 5);
        assert_eq!(lines[2].matches('█').count(), 0);
        assert!(lines[1].starts_with("bb"));
    }

    #[test]
    fn bar_chart_empty_and_zero_safe() {
        assert_eq!(bar_chart(&[], 10), "");
        let chart = bar_chart(&[("x", 0.0)], 10);
        assert!(chart.contains("0.000"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let a = fake(100, 100);
        let b = fake(250, 100);
        let csv = results_csv(&[("2W1", vec![&a, &b])]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("workload,policy,"));
        assert!(lines[1].starts_with("2W1,X,100,100,1.000000,"));
        assert!(lines[2].contains(",250,2.500000,"));
    }

    #[test]
    fn json_grid_is_flat_and_labelled() {
        let a = fake(100, 100);
        let b = fake(250, 100);
        let j = results_json(&[("2W1", vec![&a, &b])]);
        assert!(j.starts_with("[{\"label\":\"2W1\",\"result\":{\"policy\":\"X\""));
        assert_eq!(j.matches("\"label\":\"2W1\"").count(), 2);
        assert!(j.contains("\"throughput\":1.0"));
        assert!(j.contains("\"throughput\":2.5"));
        assert!(j.ends_with("}]"));
    }

    #[test]
    fn histogram_table_prints_bins() {
        let mut h = LatencyHistogram::for_l2_hit_time();
        for _ in 0..10 {
            h.record(22);
        }
        h.record(150);
        let t = histogram_table(&h);
        assert!(t.contains("samples=11"));
        assert!(t.contains("20+"));
        assert!(t.contains("150+"));
    }
}
