//! Parallel, fault-tolerant experiment runner.
//!
//! Figure regeneration sweeps dozens of independent simulations
//! (workload × policy × machine size). Each simulation is single-
//! threaded and deterministic, so the sweep parallelises embarrassingly:
//! a `std::thread::scope` spawns one worker per host core, workers claim
//! jobs from an atomic counter, and results land in their job's slot —
//! deterministic output order regardless of scheduling.
//!
//! Fault tolerance (DESIGN.md §11):
//!
//! * each job runs under `catch_unwind` and is **retried once** on
//!   panic; a second panic becomes `SimError::JobPanicked` in that
//!   job's slot while every other job completes normally;
//! * poisoned result slots are recovered, not re-panicked — one bad job
//!   can't cascade into a confusing secondary panic at collection time;
//! * [`run_sweep_journaled`] appends each finished job to a JSONL
//!   journal and, on restart, replays recorded jobs instead of
//!   re-running them. Because every raw field in our JSON is an
//!   integer/bool/string, the replayed output is **byte-identical** to
//!   an uninterrupted sweep — the `deterministic_across_sweep_workers`
//!   guarantee extended across process boundaries.

use crate::config::SimConfig;
use crate::error::SimError;
use crate::json::{parse_json, JsonObject};
use crate::result::SimResult;
use crate::sim::Simulator;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One labelled experiment in a sweep.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// Free-form label (e.g. `"fig8/6W4/MFLUSH"`).
    pub label: String,
    /// The experiment.
    pub config: SimConfig,
}

impl SweepJob {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, config: SimConfig) -> Self {
        SweepJob {
            label: label.into(),
            config,
        }
    }
}

/// Outcome of one sweep job.
pub type JobOutcome = Result<SimResult, SimError>;

/// Lock a slot mutex, recovering from poison: a worker that panicked
/// while holding the lock can't have left the `Option` half-written
/// (the assignment is a single store), so the value is still good.
fn lock_recovering<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Run one job with panic isolation: panics are caught and the job is
/// retried once (transient panics — e.g. allocation failure — get a
/// second chance; deterministic ones fail identically and are
/// reported).
fn run_job(job: &SweepJob) -> JobOutcome {
    for attempt in 0..2 {
        match catch_unwind(AssertUnwindSafe(|| {
            Simulator::build(&job.config).and_then(|s| s.run())
        })) {
            Ok(outcome) => return outcome,
            Err(payload) if attempt == 0 => drop(payload),
            Err(payload) => {
                let text = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic payload>".to_string());
                return Err(SimError::JobPanicked {
                    label: job.label.clone(),
                    payload: text,
                });
            }
        }
    }
    // lint: allow(D11) -- both retry attempts return; this arm is unreachable by construction
    unreachable!("loop returns on both attempts")
}

/// Run all jobs, `max_workers` at a time (0 = number of host CPUs).
/// Outcomes are returned in job order; a panicking or livelocked job
/// yields an `Err` in its slot without disturbing the others.
pub fn run_sweep(jobs: &[SweepJob], max_workers: usize) -> Vec<(String, JobOutcome)> {
    run_sweep_journaled(jobs, max_workers, None)
}

/// [`run_sweep`] with an optional append-only journal. Jobs already
/// recorded in the journal (matched by index, label and a fingerprint
/// of the config) are replayed instead of re-run, so an interrupted
/// sweep resumes where it stopped. Journal lines are self-describing
/// and the reader skips anything malformed — a `kill -9` can at worst
/// truncate the final line.
pub fn run_sweep_journaled(
    jobs: &[SweepJob],
    max_workers: usize,
    journal: Option<&Path>,
) -> Vec<(String, JobOutcome)> {
    let workers = if max_workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        max_workers
    }
    .min(jobs.len().max(1));

    let results: Vec<Mutex<Option<JobOutcome>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();

    // Resume: pre-fill slots from the journal before any worker starts.
    let mut journal_file: Option<Mutex<File>> = None;
    if let Some(path) = journal {
        for (i, outcome) in read_journal(path, jobs) {
            *lock_recovering(&results[i]) = Some(outcome);
        }
        match OpenOptions::new().create(true).append(true).open(path) {
            Ok(f) => journal_file = Some(Mutex::new(f)),
            Err(e) => {
                // A sweep that can't journal still produces results;
                // it just won't be resumable.
                eprintln!("warning: cannot open journal {}: {e}", path.display());
            }
        }
    }

    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                if lock_recovering(&results[i]).is_some() {
                    continue; // replayed from the journal
                }
                let outcome = run_job(&jobs[i]);
                if let Some(jf) = &journal_file {
                    append_journal_line(jf, i, &jobs[i], &outcome);
                }
                *lock_recovering(&results[i]) = Some(outcome);
            });
        }
    });

    jobs.iter()
        .zip(results)
        .map(|(job, slot)| {
            let outcome = slot
                .into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .unwrap_or_else(|| {
                    // Only reachable if a worker died between claiming
                    // and storing — report it instead of panicking.
                    Err(SimError::JobPanicked {
                        label: job.label.clone(),
                        payload: "job produced no result".to_string(),
                    })
                });
            (job.label.clone(), outcome)
        })
        .collect()
}

/// [`run_sweep`] for callers that treat any job failure as fatal
/// (figure harness, calibration): unwraps each outcome, panicking with
/// the job label on the first error. Panicking here is deliberate —
/// partial figures are worse than no figures.
pub fn run_sweep_ok(jobs: &[SweepJob], max_workers: usize) -> Vec<(String, SimResult)> {
    run_sweep(jobs, max_workers)
        .into_iter()
        .map(|(label, outcome)| match outcome {
            Ok(r) => (label, r),
            // lint: allow(D11) -- documented contract: `_ok` aborts on any failed job rather than plot partial figures
            Err(e) => panic!("sweep job '{label}' failed: {e}"),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Journal format: one JSON object per line, append-only.
//   {"job":3,"label":"...","cfg":"<fnv64 of config JSON>","ok":true,"result":{...}}
//   {"job":4,"label":"...","cfg":"...","ok":false,"error":{...}}
// Append order is completion order (workers finish out of order); the
// final output is job-ordered regardless because entries carry their
// index. The cfg fingerprint keeps a stale journal (edited sweep,
// different cycles/seed) from polluting a new run.
// ---------------------------------------------------------------------

// The fingerprint lives in crate::cache (pub) since the serve-layer
// result cache keys on the identical hash; the journal reuses it.
use crate::cache::config_fingerprint;

fn append_journal_line(jf: &Mutex<File>, index: usize, job: &SweepJob, outcome: &JobOutcome) {
    let mut line = String::new();
    {
        let mut o = JsonObject::begin(&mut line);
        o.field("job", &index)
            .field("label", &job.label)
            .field("cfg", &config_fingerprint(&job.config));
        match outcome {
            Ok(r) => o.field("ok", &true).field("result", r),
            Err(e) => o.field("ok", &false).field("error", e),
        };
        o.end();
    }
    line.push('\n');
    let mut f = lock_recovering(jf);
    // One write + flush per line keeps lines atomic enough for the
    // crash model we care about (a killed process truncates the tail).
    if let Err(e) = f.write_all(line.as_bytes()).and_then(|()| f.flush()) {
        eprintln!("warning: journal write failed: {e}");
    }
}

/// Parse a journal, returning `(job_index, outcome)` for every line
/// that matches a job in this sweep. Malformed or stale lines are
/// skipped silently — they are expected after a crash.
fn read_journal(path: &Path, jobs: &[SweepJob]) -> Vec<(usize, JobOutcome)> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(_) => return Vec::new(), // fresh sweep: no journal yet
    };
    let mut entries = Vec::new();
    for line in BufReader::new(file).lines() {
        let Ok(line) = line else { break };
        let Some(entry) = parse_journal_line(&line, jobs) else {
            continue;
        };
        entries.push(entry);
    }
    entries
}

fn parse_journal_line(line: &str, jobs: &[SweepJob]) -> Option<(usize, JobOutcome)> {
    let v = parse_json(line).ok()?;
    let index = v.req_u64("job").ok()? as usize;
    let job = jobs.get(index)?;
    if v.req_str("label").ok()? != job.label {
        return None;
    }
    if v.req_str("cfg").ok()? != config_fingerprint(&job.config) {
        return None;
    }
    let outcome = if v.req_bool("ok").ok()? {
        Ok(SimResult::from_json(v.get("result")?).ok()?)
    } else {
        Err(SimError::from_json(v.get("error")?).ok()?)
    };
    Some((index, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::ToJson;
    use crate::workloads::Workload;
    use smtsim_policy::PolicyKind;

    fn job(label: &str, workload: &str, policy: PolicyKind) -> SweepJob {
        let w = Workload::by_name(workload).unwrap();
        SweepJob::new(label, SimConfig::for_workload(w, policy).with_cycles(3_000))
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("smtsim-sweep-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&dir);
        dir
    }

    #[test]
    fn results_in_job_order_with_labels() {
        let jobs = vec![
            job("a", "2W1", PolicyKind::Icount),
            job("b", "2W2", PolicyKind::FlushSpec(30)),
            job("c", "2W3", PolicyKind::Mflush),
        ];
        let out = run_sweep(&jobs, 2);
        let labels: Vec<&str> = out.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, vec!["a", "b", "c"]);
        for (_, r) in &out {
            assert!(r.as_ref().unwrap().total_committed() > 0);
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let jobs = vec![
            job("x", "2W4", PolicyKind::Icount),
            job("y", "2W5", PolicyKind::Icount),
        ];
        let par = run_sweep(&jobs, 2);
        let ser = run_sweep(&jobs, 1);
        for ((_, a), (_, b)) in par.iter().zip(&ser) {
            assert_eq!(
                a.as_ref().unwrap().total_committed(),
                b.as_ref().unwrap().total_committed()
            );
        }
    }

    #[test]
    fn zero_workers_defaults_to_host_parallelism() {
        let jobs = vec![job("only", "2W1", PolicyKind::Icount)];
        let out = run_sweep(&jobs, 0);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn empty_sweep_is_empty() {
        assert!(run_sweep(&[], 4).is_empty());
    }

    #[test]
    fn invalid_job_fails_alone() {
        let mut bad = job("bad", "2W2", PolicyKind::Icount);
        bad.config.cycles = 0;
        let jobs = vec![job("good1", "2W1", PolicyKind::Icount), bad, job(
            "good2",
            "2W3",
            PolicyKind::Icount,
        )];
        let out = run_sweep(&jobs, 2);
        assert!(out[0].1.is_ok());
        assert!(matches!(out[1].1, Err(SimError::InvalidConfig(_))));
        assert!(out[2].1.is_ok());
        // The healthy jobs are unaffected by their failed neighbour.
        let clean = run_sweep(&[jobs[0].clone(), jobs[2].clone()], 2);
        assert_eq!(
            out[0].1.as_ref().unwrap().to_json(),
            clean[0].1.as_ref().unwrap().to_json()
        );
        assert_eq!(
            out[2].1.as_ref().unwrap().to_json(),
            clean[1].1.as_ref().unwrap().to_json()
        );
    }

    #[test]
    fn run_sweep_ok_unwraps_successes() {
        let jobs = vec![job("a", "2W1", PolicyKind::Icount)];
        let out = run_sweep_ok(&jobs, 1);
        assert_eq!(out.len(), 1);
        assert!(out[0].1.total_committed() > 0);
    }

    #[test]
    #[should_panic(expected = "sweep job 'bad' failed")]
    fn run_sweep_ok_panics_on_failure() {
        let mut bad = job("bad", "2W1", PolicyKind::Icount);
        bad.config.cycles = 0;
        let _ = run_sweep_ok(&[bad], 1);
    }

    #[test]
    fn journaled_sweep_is_byte_identical_to_plain() {
        let jobs = vec![
            job("a", "2W1", PolicyKind::Icount),
            job("b", "2W2", PolicyKind::Mflush),
        ];
        let plain: Vec<String> = run_sweep(&jobs, 2)
            .iter()
            .map(|(_, r)| r.as_ref().unwrap().to_json())
            .collect();
        let path = temp_path("fresh.jsonl");
        let journaled: Vec<String> = run_sweep_journaled(&jobs, 2, Some(&path))
            .iter()
            .map(|(_, r)| r.as_ref().unwrap().to_json())
            .collect();
        assert_eq!(plain, journaled);
        // Second run replays everything from the journal and must still
        // be byte-identical.
        let replayed: Vec<String> = run_sweep_journaled(&jobs, 2, Some(&path))
            .iter()
            .map(|(_, r)| r.as_ref().unwrap().to_json())
            .collect();
        assert_eq!(plain, replayed);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn partial_journal_resumes_remaining_jobs() {
        let jobs = vec![
            job("a", "2W1", PolicyKind::Icount),
            job("b", "2W2", PolicyKind::Mflush),
            job("c", "2W3", PolicyKind::FlushSpec(30)),
        ];
        let path = temp_path("partial.jsonl");
        // Record only job 1, then simulate a crash plus a torn final
        // line (the realistic kill -9 artifact).
        {
            let full = run_sweep_journaled(&jobs, 1, Some(&path));
            assert!(full.iter().all(|(_, r)| r.is_ok()));
            let text = std::fs::read_to_string(&path).unwrap();
            let mut lines: Vec<&str> = text.lines().collect();
            assert_eq!(lines.len(), 3);
            lines.remove(0); // job "a" was never journaled
            let torn = format!("{}\n{}\n{}", lines[0], lines[1], &lines[1][..lines[1].len() / 2]);
            std::fs::write(&path, torn).unwrap();
        }
        let resumed: Vec<String> = run_sweep_journaled(&jobs, 2, Some(&path))
            .iter()
            .map(|(_, r)| r.as_ref().unwrap().to_json())
            .collect();
        let fresh: Vec<String> = run_sweep(&jobs, 1)
            .iter()
            .map(|(_, r)| r.as_ref().unwrap().to_json())
            .collect();
        assert_eq!(resumed, fresh, "resume must be byte-identical");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stale_journal_entries_are_ignored() {
        let jobs = vec![job("a", "2W1", PolicyKind::Icount)];
        let path = temp_path("stale.jsonl");
        {
            let _ = run_sweep_journaled(&jobs, 1, Some(&path));
        }
        // Same label, different config → fingerprint mismatch → re-run.
        let mut changed = jobs.clone();
        changed[0].config = changed[0].config.clone().with_seed(999);
        let out = run_sweep_journaled(&changed, 1, Some(&path));
        let direct = run_sweep(&changed, 1);
        assert_eq!(
            out[0].1.as_ref().unwrap().to_json(),
            direct[0].1.as_ref().unwrap().to_json()
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journal_replays_recorded_errors() {
        let mut bad = job("bad", "2W1", PolicyKind::Icount);
        bad.config.cycles = 0;
        let jobs = vec![bad];
        let path = temp_path("errors.jsonl");
        let first = run_sweep_journaled(&jobs, 1, Some(&path));
        let second = run_sweep_journaled(&jobs, 1, Some(&path));
        assert_eq!(
            first[0].1.as_ref().unwrap_err(),
            second[0].1.as_ref().unwrap_err()
        );
        assert!(matches!(second[0].1, Err(SimError::InvalidConfig(_))));
        // Only the first run wrote a line; the replay appended nothing.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        let _ = std::fs::remove_file(&path);
    }
}
