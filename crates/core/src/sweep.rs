//! Parallel experiment runner.
//!
//! Figure regeneration sweeps dozens of independent simulations
//! (workload × policy × machine size). Each simulation is single-
//! threaded and deterministic, so the sweep parallelises embarrassingly:
//! a `std::thread::scope` spawns one worker per host core, workers claim
//! jobs from an atomic counter, and results land in their job's slot —
//! deterministic output order regardless of scheduling.

use crate::config::SimConfig;
use crate::result::SimResult;
use crate::sim::Simulator;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One labelled experiment in a sweep.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// Free-form label (e.g. `"fig8/6W4/MFLUSH"`).
    pub label: String,
    /// The experiment.
    pub config: SimConfig,
}

impl SweepJob {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, config: SimConfig) -> Self {
        SweepJob {
            label: label.into(),
            config,
        }
    }
}

/// Run all jobs, `max_workers` at a time (0 = number of host CPUs).
/// Results are returned in job order.
pub fn run_sweep(jobs: &[SweepJob], max_workers: usize) -> Vec<(String, SimResult)> {
    let workers = if max_workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        max_workers
    }
    .min(jobs.len().max(1));

    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<SimResult>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();

    // A scoped thread that panics propagates on join (end of scope), so
    // a failing job aborts the sweep just as the crossbeam version did.
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let result = Simulator::build(&jobs[i].config).run();
                *results[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    jobs.iter()
        .zip(results)
        .map(|(job, slot)| {
            (
                job.label.clone(),
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every job produces a result"),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::Workload;
    use smtsim_policy::PolicyKind;

    fn job(label: &str, workload: &str, policy: PolicyKind) -> SweepJob {
        let w = Workload::by_name(workload).unwrap();
        SweepJob::new(label, SimConfig::for_workload(w, policy).with_cycles(3_000))
    }

    #[test]
    fn results_in_job_order_with_labels() {
        let jobs = vec![
            job("a", "2W1", PolicyKind::Icount),
            job("b", "2W2", PolicyKind::FlushSpec(30)),
            job("c", "2W3", PolicyKind::Mflush),
        ];
        let out = run_sweep(&jobs, 2);
        let labels: Vec<&str> = out.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, vec!["a", "b", "c"]);
        for (_, r) in &out {
            assert!(r.total_committed() > 0);
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let jobs = vec![
            job("x", "2W4", PolicyKind::Icount),
            job("y", "2W5", PolicyKind::Icount),
        ];
        let par = run_sweep(&jobs, 2);
        let ser = run_sweep(&jobs, 1);
        for ((_, a), (_, b)) in par.iter().zip(&ser) {
            assert_eq!(a.total_committed(), b.total_committed());
        }
    }

    #[test]
    fn zero_workers_defaults_to_host_parallelism() {
        let jobs = vec![job("only", "2W1", PolicyKind::Icount)];
        let out = run_sweep(&jobs, 0);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn empty_sweep_is_empty() {
        assert!(run_sweep(&[], 4).is_empty());
    }
}
