//! The paper's workload table (Fig. 1) plus the Fig. 5(b) special case.
//!
//! Workload names follow the paper: `xWy` where `x` is the thread count
//! and `y` the workload id. An `x`-thread workload runs on `x/2`
//! two-context SMT cores; consecutive letter pairs share a core.

use smtsim_trace::spec;
use smtsim_trace::BenchProfile;

/// One multiprogrammed workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// Paper name (e.g. `"6W2"`).
    pub name: &'static str,
    /// Benchmark letter keys in thread order (Fig. 1 legend).
    pub keys: &'static str,
}

/// The 20 workloads of Fig. 1, in the paper's order.
pub static ALL_WORKLOADS: [Workload; 20] = [
    Workload { name: "2W1", keys: "bj" },
    Workload { name: "2W2", keys: "ne" },
    Workload { name: "2W3", keys: "da" },
    Workload { name: "2W4", keys: "gf" },
    Workload { name: "2W5", keys: "rp" },
    Workload { name: "4W1", keys: "bqtj" },
    Workload { name: "4W2", keys: "lnpe" },
    Workload { name: "4W3", keys: "dsra" },
    Workload { name: "4W4", keys: "gbmf" },
    Workload { name: "4W5", keys: "rjfp" },
    Workload { name: "6W1", keys: "lbqftj" },
    Workload { name: "6W2", keys: "glnpea" },
    Workload { name: "6W3", keys: "dlswra" },
    Workload { name: "6W4", keys: "rgbmhf" },
    Workload { name: "6W5", keys: "hlermd" },
    Workload { name: "8W1", keys: "dlbgijcf" },
    Workload { name: "8W2", keys: "bgmnahop" },
    Workload { name: "8W3", keys: "mnrqijeh" },
    Workload { name: "8W4", keys: "lbgmnrfs" },
    Workload { name: "8W5", keys: "qbckeaot" },
];

/// The Fig. 5(b) workload: four instances each of bzip2 (`k`) and twolf
/// (`l`), arranged so instances of the two applications never share a
/// core (cores: kk, kk, ll, ll).
pub static FIG5B_WORKLOAD: Workload = Workload {
    name: "bzip2x4+twolfx4",
    keys: "kkkkllll",
};

impl Workload {
    /// Look up a workload by paper name (`"2W1"` … `"8W5"`, or the
    /// Fig. 5(b) name).
    pub fn by_name(name: &str) -> Option<&'static Workload> {
        if name == FIG5B_WORKLOAD.name {
            return Some(&FIG5B_WORKLOAD);
        }
        ALL_WORKLOADS.iter().find(|w| w.name == name)
    }

    /// Number of threads.
    pub fn threads(&self) -> usize {
        self.keys.len()
    }

    /// Number of two-context SMT cores the workload needs.
    pub fn cores(&self) -> u32 {
        (self.threads() / 2) as u32
    }

    /// Benchmark profiles in thread order.
    pub fn profiles(&self) -> Vec<&'static BenchProfile> {
        self.keys
            .chars()
            .map(|k| spec::benchmark_by_key(k).expect("valid benchmark key"))
            .collect()
    }

    /// Benchmark names in thread order.
    pub fn benchmark_names(&self) -> Vec<&'static str> {
        self.profiles().iter().map(|p| p.name).collect()
    }

    /// Workloads with exactly `threads` threads (the paper's per-size
    /// groups: 2, 4, 6, 8).
    pub fn of_size(threads: usize) -> Vec<&'static Workload> {
        ALL_WORKLOADS
            .iter()
            .filter(|w| w.threads() == threads)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_workloads_five_per_size() {
        assert_eq!(ALL_WORKLOADS.len(), 20);
        for size in [2, 4, 6, 8] {
            assert_eq!(Workload::of_size(size).len(), 5, "size {size}");
        }
    }

    #[test]
    fn all_keys_resolve_to_benchmarks() {
        for w in &ALL_WORKLOADS {
            assert_eq!(w.profiles().len(), w.threads());
            assert_eq!(w.threads() % 2, 0, "{}: odd thread count", w.name);
        }
    }

    #[test]
    fn paper_table_spot_checks() {
        // Fig. 1: 2W3 = d,a = mcf+gzip; 6W3 = d,l,s,w,r,a;
        // 8W1 = d,l,b,g,i,j,c,f.
        assert_eq!(
            Workload::by_name("2W3").unwrap().benchmark_names(),
            vec!["mcf", "gzip"]
        );
        assert_eq!(
            Workload::by_name("6W3").unwrap().benchmark_names(),
            vec!["mcf", "twolf", "mesa", "applu", "lucas", "gzip"]
        );
        assert_eq!(
            Workload::by_name("8W1").unwrap().benchmark_names(),
            vec!["mcf", "twolf", "vpr", "parser", "gap", "vortex", "gcc", "perlbmk"]
        );
    }

    #[test]
    fn cores_are_half_threads() {
        assert_eq!(Workload::by_name("2W1").unwrap().cores(), 1);
        assert_eq!(Workload::by_name("4W2").unwrap().cores(), 2);
        assert_eq!(Workload::by_name("6W4").unwrap().cores(), 3);
        assert_eq!(Workload::by_name("8W5").unwrap().cores(), 4);
    }

    #[test]
    fn fig5b_keeps_apps_on_separate_cores() {
        let w = &FIG5B_WORKLOAD;
        assert_eq!(w.threads(), 8);
        let keys: Vec<char> = w.keys.chars().collect();
        for core in 0..4 {
            assert_eq!(
                keys[2 * core],
                keys[2 * core + 1],
                "core {core} mixes applications"
            );
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(Workload::by_name("9W9").is_none());
    }
}
