//! Measurement snapshot of one simulation run.

use crate::json::JsonValue;
use smtsim_cpu::{CoreStats, ThreadStats};
use smtsim_energy::EnergyAccount;
use smtsim_mem::{CoreMemStats, LatencyHistogram, MemStats};

/// Everything the figure harness needs from one run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Policy label (e.g. `"FLUSH-S100"`).
    pub policy: String,
    /// Workload description (benchmark names, thread order).
    pub workload: Vec<String>,
    /// Simulated cycles.
    pub cycles: u64,
    /// Per-core statistics.
    pub cores: Vec<CoreStats>,
    /// Memory-system statistics.
    pub mem: MemStats,
    /// Distribution of L2-hit service times for loads (Fig. 4).
    pub l2_hit_hist: LatencyHistogram,
}

impl SimResult {
    /// Total committed instructions across all threads.
    pub fn total_committed(&self) -> u64 {
        self.cores.iter().map(|c| c.total_committed()).sum()
    }

    /// System throughput in instructions per cycle — the paper's
    /// figure-of-merit for every throughput plot.
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_committed() as f64 / self.cycles as f64
        }
    }

    /// Per-thread IPCs in thread order.
    pub fn per_thread_ipc(&self) -> Vec<f64> {
        self.cores
            .iter()
            .flat_map(|c| c.threads.iter().map(|t| t.ipc(self.cycles)))
            .collect()
    }

    /// Merged energy ledger across all threads.
    pub fn energy(&self) -> EnergyAccount {
        let mut acc = EnergyAccount::new();
        for c in &self.cores {
            acc.merge(&c.energy());
        }
        acc
    }

    /// The paper's Fig. 11 metric: energy wasted by the FLUSH mechanism
    /// (refetched work), in commit-energy units.
    pub fn wasted_energy(&self) -> f64 {
        self.energy().wasted_energy()
    }

    /// FLUSH response actions executed across all cores.
    pub fn total_flushes(&self) -> u64 {
        self.cores.iter().map(|c| c.flushes_executed).sum()
    }

    /// Throughput ratio of `self` over a baseline run.
    pub fn speedup_over(&self, baseline: &SimResult) -> f64 {
        let b = baseline.throughput();
        if b == 0.0 {
            0.0
        } else {
            self.throughput() / b
        }
    }

    /// Harmonic mean of the per-thread IPCs — the standard SMT metric
    /// that rewards *balanced* progress: a policy that starves one
    /// thread to feed another scores worse here than on raw throughput.
    pub fn hmean_ipc(&self) -> f64 {
        let ipcs = self.per_thread_ipc();
        if ipcs.iter().any(|&i| i <= 0.0) {
            return 0.0;
        }
        ipcs.len() as f64 / ipcs.iter().map(|i| 1.0 / i).sum::<f64>()
    }

    /// Min/max fairness index over per-thread IPCs, in `[0, 1]`
    /// (1 = perfectly balanced). Note that multiprogrammed SPEC threads
    /// have very different intrinsic IPCs, so this measures *joint*
    /// imbalance, not policy-induced imbalance alone.
    pub fn fairness_index(&self) -> f64 {
        let ipcs = self.per_thread_ipc();
        let max = ipcs.iter().cloned().fold(f64::NAN, f64::max);
        let min = ipcs.iter().cloned().fold(f64::NAN, f64::min);
        if max.is_nan() || max <= 0.0 {
            return 0.0;
        }
        min / max
    }

    /// Per-thread speedups over a baseline run of the *same workload*
    /// (thread-by-thread), e.g. MFLUSH vs ICOUNT. Panics when the
    /// workloads differ.
    pub fn per_thread_speedup(&self, baseline: &SimResult) -> Vec<f64> {
        assert_eq!(
            self.workload, baseline.workload,
            "per-thread speedup needs identical workloads"
        );
        self.per_thread_ipc()
            .iter()
            .zip(baseline.per_thread_ipc())
            .map(|(a, b)| if b == 0.0 { 0.0 } else { a / b })
            .collect()
    }

    /// Decode a result from its own JSON rendering (the sweep journal's
    /// replay path). Only the *raw* fields are read — every float in
    /// the JSON (`throughput`, `hmean_ipc`, `l2_hit_rate`, energy
    /// ratios, …) is derived from them and recomputed at emit time, so
    /// `decode(encode(r)).to_json() == r.to_json()` byte-for-byte.
    pub fn from_json(v: &JsonValue) -> Result<SimResult, String> {
        Ok(SimResult {
            policy: v.req_str("policy")?.to_string(),
            workload: v
                .req_arr("workload")?
                .iter()
                .map(|w| {
                    w.as_str()
                        .map(String::from)
                        .ok_or_else(|| "non-string workload entry".to_string())
                })
                .collect::<Result<_, _>>()?,
            cycles: v.req_u64("cycles")?,
            cores: v
                .req_arr("cores")?
                .iter()
                .map(core_stats_from_json)
                .collect::<Result<_, _>>()?,
            mem: mem_stats_from_json(v.get("mem").ok_or("missing mem")?)?,
            l2_hit_hist: histogram_from_json(
                v.get("l2_hit_hist").ok_or("missing l2_hit_hist")?,
            )?,
        })
    }
}

fn u64_array(v: &JsonValue, key: &str) -> Result<Vec<u64>, String> {
    v.req_arr(key)?
        .iter()
        .map(|x| x.as_u64().ok_or_else(|| format!("non-integer in {key:?}")))
        .collect()
}

fn u64_array8(v: &JsonValue, key: &str) -> Result<[u64; 8], String> {
    u64_array(v, key)?
        .try_into()
        .map_err(|_| format!("{key:?} is not 8 entries"))
}

fn energy_from_json(v: &JsonValue) -> Result<EnergyAccount, String> {
    Ok(EnergyAccount::from_parts(
        v.req_u64("committed")?,
        u64_array8(v, "flush_squashed")?,
        u64_array8(v, "branch_squashed")?,
    ))
}

fn thread_stats_from_json(v: &JsonValue) -> Result<ThreadStats, String> {
    Ok(ThreadStats {
        committed: v.req_u64("committed")?,
        fetched: v.req_u64("fetched")?,
        branches: v.req_u64("branches")?,
        mispredicts: v.req_u64("mispredicts")?,
        loads_issued: v.req_u64("loads_issued")?,
        flushes: v.req_u64("flushes")?,
        energy: energy_from_json(v.get("energy").ok_or("missing energy")?)?,
    })
}

fn core_stats_from_json(v: &JsonValue) -> Result<CoreStats, String> {
    Ok(CoreStats {
        threads: v
            .req_arr("threads")?
            .iter()
            .map(thread_stats_from_json)
            .collect::<Result<_, _>>()?,
        fetch_active_cycles: v.req_u64("fetch_active_cycles")?,
        iq_full_stalls: v.req_u64("iq_full_stalls")?,
        reg_full_stalls: v.req_u64("reg_full_stalls")?,
        rob_full_stalls: v.req_u64("rob_full_stalls")?,
        mshr_retries: v.req_u64("mshr_retries")?,
        flushes_executed: v.req_u64("flushes_executed")?,
        stalls_executed: v.req_u64("stalls_executed")?,
        store_forwards: v.req_u64("store_forwards")?,
    })
}

fn core_mem_stats_from_json(v: &JsonValue) -> Result<CoreMemStats, String> {
    Ok(CoreMemStats {
        ifetches: v.req_u64("ifetches")?,
        ifetch_l1_misses: v.req_u64("ifetch_l1_misses")?,
        loads: v.req_u64("loads")?,
        load_l1_misses: v.req_u64("load_l1_misses")?,
        stores: v.req_u64("stores")?,
        store_l1_misses: v.req_u64("store_l1_misses")?,
        l2_hits: v.req_u64("l2_hits")?,
        l2_misses: v.req_u64("l2_misses")?,
        itlb_misses: v.req_u64("itlb_misses")?,
        dtlb_misses: v.req_u64("dtlb_misses")?,
        mshr_merges: v.req_u64("mshr_merges")?,
        mshr_full_stalls: v.req_u64("mshr_full_stalls")?,
        writebacks: v.req_u64("writebacks")?,
        prefetches: v.req_u64("prefetches")?,
    })
}

fn mem_stats_from_json(v: &JsonValue) -> Result<MemStats, String> {
    Ok(MemStats {
        cores: v
            .req_arr("cores")?
            .iter()
            .map(core_mem_stats_from_json)
            .collect::<Result<_, _>>()?,
    })
}

fn histogram_from_json(v: &JsonValue) -> Result<LatencyHistogram, String> {
    Ok(LatencyHistogram::from_parts(
        v.req_u64("bin_width")?,
        u64_array(v, "bins")?,
        v.req_u64("overflow")?,
        v.req_u64("count")?,
        v.req_u64("sum")?,
        v.req_opt_u64("min")?,
        v.req_opt_u64("max")?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtsim_cpu::ThreadStats;

    fn result_with(committed: &[u64], cycles: u64) -> SimResult {
        SimResult {
            policy: "TEST".into(),
            workload: vec!["a".into(); committed.len()],
            cycles,
            cores: committed
                .chunks(2)
                .map(|pair| CoreStats {
                    threads: pair
                        .iter()
                        .map(|&c| ThreadStats {
                            committed: c,
                            ..Default::default()
                        })
                        .collect(),
                    ..Default::default()
                })
                .collect(),
            mem: MemStats::default(),
            l2_hit_hist: LatencyHistogram::for_l2_hit_time(),
        }
    }

    #[test]
    fn throughput_and_ipc() {
        let r = result_with(&[100, 300], 100);
        assert!((r.throughput() - 4.0).abs() < 1e-12);
        assert_eq!(r.per_thread_ipc(), vec![1.0, 3.0]);
        assert_eq!(r.total_committed(), 400);
    }

    #[test]
    fn speedup_over_baseline() {
        let base = result_with(&[100, 100], 100);
        let fast = result_with(&[150, 150], 100);
        assert!((fast.speedup_over(&base) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_safe() {
        let r = result_with(&[0, 0], 0);
        assert_eq!(r.throughput(), 0.0);
    }

    #[test]
    fn hmean_punishes_imbalance() {
        let balanced = result_with(&[200, 200], 100);
        let skewed = result_with(&[390, 10], 100);
        assert_eq!(balanced.total_committed(), skewed.total_committed());
        assert!(balanced.hmean_ipc() > 3.0 * skewed.hmean_ipc());
    }

    #[test]
    fn hmean_zero_when_a_thread_starves() {
        let r = result_with(&[100, 0], 100);
        assert_eq!(r.hmean_ipc(), 0.0);
    }

    #[test]
    fn fairness_index_bounds() {
        assert!((result_with(&[100, 100], 100).fairness_index() - 1.0).abs() < 1e-12);
        assert!((result_with(&[100, 25], 100).fairness_index() - 0.25).abs() < 1e-12);
        assert_eq!(result_with(&[0, 0], 100).fairness_index(), 0.0);
    }

    #[test]
    fn per_thread_speedup_elementwise() {
        let base = result_with(&[100, 200], 100);
        let fast = result_with(&[150, 100], 100);
        assert_eq!(fast.per_thread_speedup(&base), vec![1.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "identical workloads")]
    fn per_thread_speedup_rejects_different_workloads() {
        let a = result_with(&[100], 100);
        let mut b = result_with(&[100], 100);
        b.workload = vec!["other".into()];
        let _ = a.per_thread_speedup(&b);
    }

    #[test]
    fn json_roundtrip_is_byte_identical() {
        use crate::json::{parse_json, ToJson};
        // A real simulation result, so every field is exercised with
        // non-trivial values (histogram populated, energy non-zero).
        use crate::config::SimConfig;
        use crate::sim::Simulator;
        use crate::workloads::Workload;
        use smtsim_policy::PolicyKind;
        let w = Workload::by_name("4W3").unwrap();
        let cfg = SimConfig::for_workload(w, PolicyKind::Mflush).with_cycles(8_000);
        let r = Simulator::build(&cfg).unwrap().run().unwrap();
        let encoded = r.to_json();
        let decoded = SimResult::from_json(&parse_json(&encoded).unwrap()).unwrap();
        assert_eq!(decoded.to_json(), encoded);
    }

    #[test]
    fn from_json_rejects_damaged_documents() {
        use crate::json::parse_json;
        for bad in [
            r#"{"policy":"X"}"#,
            r#"{"policy":1,"workload":[],"cycles":5}"#,
            r#"[1,2,3]"#,
        ] {
            let v = parse_json(bad).unwrap();
            assert!(SimResult::from_json(&v).is_err(), "accepted {bad}");
        }
    }
}
