//! The simulator's failure model (DESIGN.md §11).
//!
//! Every way a run can fail is a [`SimError`] variant, so that drivers
//! (the `smtsim` CLI, `run_sweep`, the figure harness) report failures
//! as machine-readable JSON instead of aborting the process. Errors are
//! values: a sweep with one failed job still returns every other job's
//! result, byte-identical to a fault-free sweep.

use crate::json::{JsonObject, JsonValue, ToJson};
use smtsim_cpu::ThreadProbe;
use std::fmt;

/// Everything that can go wrong building or running one simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The [`crate::config::SimConfig`] failed validation.
    InvalidConfig(String),
    /// The forward-progress watchdog fired: no core committed an
    /// instruction and no memory transaction retired for
    /// `watchdog_cycles` consecutive cycles (a livelocked machine —
    /// e.g. an MSHR leak, a swallowed DRAM response, or a policy that
    /// fences every thread forever).
    NoForwardProgress {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// The core that has gone longest without committing.
        core: u32,
        /// That core's last commit cycle (0 = never committed).
        last_commit_cycle: u64,
        /// Structured machine-state snapshot at the firing cycle.
        diagnostic: ProgressDiagnostic,
    },
    /// A sweep job panicked (twice — jobs are retried once).
    JobPanicked {
        /// The job's sweep label.
        label: String,
        /// The panic payload, when it was a string.
        payload: String,
    },
    /// A recorded trace failed validation (see `smtsim_trace`'s
    /// `TraceError::Corrupt`).
    TraceCorrupt(String),
}

/// Machine-state snapshot attached to a `NoForwardProgress` error:
/// enough to diagnose *which* resource wedged without re-running under
/// a debugger. Deterministic — built purely from simulated state.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressDiagnostic {
    /// Fetch-policy label in force (e.g. `"MFLUSH"`).
    pub policy: String,
    /// The watchdog interval that fired.
    pub watchdog_cycles: u64,
    /// Memory requests still in flight system-wide.
    pub inflight: u64,
    /// Per-core pipeline and MSHR state.
    pub cores: Vec<CoreDiagnostic>,
}

/// One core's slice of a [`ProgressDiagnostic`].
#[derive(Debug, Clone, PartialEq)]
pub struct CoreDiagnostic {
    /// Core id.
    pub core: u32,
    /// Cycle of this core's most recent commit (0 = never).
    pub last_commit_cycle: u64,
    /// Occupied MSHR entries.
    pub mshr_occupancy: u64,
    /// Whether the MSHR file is full (no new misses can issue).
    pub mshr_full: bool,
    /// Per-thread fetch/ROB state.
    pub threads: Vec<ThreadProbe>,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::NoForwardProgress {
                cycle,
                core,
                last_commit_cycle,
                ..
            } => write!(
                f,
                "no forward progress by cycle {cycle}: core {core} last committed at cycle {last_commit_cycle}"
            ),
            SimError::JobPanicked { label, payload } => {
                write!(f, "job '{label}' panicked: {payload}")
            }
            SimError::TraceCorrupt(msg) => write!(f, "corrupt trace: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<smtsim_trace::TraceError> for SimError {
    fn from(e: smtsim_trace::TraceError) -> Self {
        SimError::TraceCorrupt(e.to_string())
    }
}

impl ToJson for ThreadProbe {
    fn write_json(&self, out: &mut String) {
        let mut o = JsonObject::begin(out);
        o.field("tid", &self.tid)
            .field("gate", &self.gate)
            .field("frontend", &self.frontend)
            .field("rob", &self.rob)
            .field("icache_wait", &self.icache_wait)
            .field("committed", &self.committed);
        o.end();
    }
}

impl ToJson for CoreDiagnostic {
    fn write_json(&self, out: &mut String) {
        let mut o = JsonObject::begin(out);
        o.field("core", &self.core)
            .field("last_commit_cycle", &self.last_commit_cycle)
            .field("mshr_occupancy", &self.mshr_occupancy)
            .field("mshr_full", &self.mshr_full)
            .field("threads", &self.threads);
        o.end();
    }
}

impl ToJson for ProgressDiagnostic {
    fn write_json(&self, out: &mut String) {
        let mut o = JsonObject::begin(out);
        o.field("policy", &self.policy)
            .field("watchdog_cycles", &self.watchdog_cycles)
            .field("inflight", &self.inflight)
            .field("cores", &self.cores);
        o.end();
    }
}

impl ToJson for SimError {
    fn write_json(&self, out: &mut String) {
        let mut o = JsonObject::begin(out);
        match self {
            SimError::InvalidConfig(msg) => {
                o.field("error", &"invalid_config").field("detail", msg);
            }
            SimError::NoForwardProgress {
                cycle,
                core,
                last_commit_cycle,
                diagnostic,
            } => {
                o.field("error", &"no_forward_progress")
                    .field("cycle", cycle)
                    .field("core", core)
                    .field("last_commit_cycle", last_commit_cycle)
                    .field("diagnostic", diagnostic);
            }
            SimError::JobPanicked { label, payload } => {
                o.field("error", &"job_panicked")
                    .field("label", label)
                    .field("payload", payload);
            }
            SimError::TraceCorrupt(msg) => {
                o.field("error", &"trace_corrupt").field("detail", msg);
            }
        }
        o.end();
    }
}

// ---------------------------------------------------------------------
// JSON decoding — the inverse of the impls above, used by the sweep
// journal to replay recorded failures byte-identically.
// ---------------------------------------------------------------------

fn snapshot_from_json(v: &JsonValue) -> Result<ThreadProbe, String> {
    Ok(ThreadProbe {
        tid: v.req_u64("tid")? as u32,
        gate: v.req_str("gate")?.to_string(),
        frontend: v.req_u64("frontend")? as u32,
        rob: v.req_u64("rob")? as u32,
        icache_wait: v.req_bool("icache_wait")?,
        committed: v.req_u64("committed")?,
    })
}

fn core_diag_from_json(v: &JsonValue) -> Result<CoreDiagnostic, String> {
    Ok(CoreDiagnostic {
        core: v.req_u64("core")? as u32,
        last_commit_cycle: v.req_u64("last_commit_cycle")?,
        mshr_occupancy: v.req_u64("mshr_occupancy")?,
        mshr_full: v.req_bool("mshr_full")?,
        threads: v
            .req_arr("threads")?
            .iter()
            .map(snapshot_from_json)
            .collect::<Result<_, _>>()?,
    })
}

fn diag_from_json(v: &JsonValue) -> Result<ProgressDiagnostic, String> {
    Ok(ProgressDiagnostic {
        policy: v.req_str("policy")?.to_string(),
        watchdog_cycles: v.req_u64("watchdog_cycles")?,
        inflight: v.req_u64("inflight")?,
        cores: v
            .req_arr("cores")?
            .iter()
            .map(core_diag_from_json)
            .collect::<Result<_, _>>()?,
    })
}

impl SimError {
    /// Decode an error from its own JSON rendering (exact inverse of
    /// the [`ToJson`] impl — every field is an integer, bool or string,
    /// so `encode(decode(encode(e))) == encode(e)` holds byte-for-byte).
    pub fn from_json(v: &JsonValue) -> Result<SimError, String> {
        match v.req_str("error")? {
            "invalid_config" => Ok(SimError::InvalidConfig(v.req_str("detail")?.to_string())),
            "no_forward_progress" => Ok(SimError::NoForwardProgress {
                cycle: v.req_u64("cycle")?,
                core: v.req_u64("core")? as u32,
                last_commit_cycle: v.req_u64("last_commit_cycle")?,
                diagnostic: diag_from_json(
                    v.get("diagnostic").ok_or("missing diagnostic")?,
                )?,
            }),
            "job_panicked" => Ok(SimError::JobPanicked {
                label: v.req_str("label")?.to_string(),
                payload: v.req_str("payload")?.to_string(),
            }),
            "trace_corrupt" => Ok(SimError::TraceCorrupt(v.req_str("detail")?.to_string())),
            other => Err(format!("unknown error kind {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;

    fn sample_npf() -> SimError {
        SimError::NoForwardProgress {
            cycle: 70_000,
            core: 1,
            last_commit_cycle: 19_988,
            diagnostic: ProgressDiagnostic {
                policy: "MFLUSH".into(),
                watchdog_cycles: 50_000,
                inflight: 3,
                cores: vec![CoreDiagnostic {
                    core: 1,
                    last_commit_cycle: 19_988,
                    mshr_occupancy: 16,
                    mshr_full: true,
                    threads: vec![ThreadProbe {
                        tid: 0,
                        gate: "Open".into(),
                        frontend: 4,
                        rob: 64,
                        icache_wait: false,
                        committed: 12_345,
                    }],
                }],
            },
        }
    }

    #[test]
    fn errors_roundtrip_through_json() {
        for e in [
            SimError::InvalidConfig("cycles == 0".into()),
            sample_npf(),
            SimError::JobPanicked {
                label: "fig8/6W4/MFLUSH".into(),
                payload: "index out of bounds".into(),
            },
            SimError::TraceCorrupt("record 7: checksum mismatch".into()),
        ] {
            let j = e.to_json();
            let v = parse_json(&j).unwrap();
            let back = SimError::from_json(&v).unwrap();
            assert_eq!(back, e);
            assert_eq!(back.to_json(), j, "re-encode must be byte-identical");
        }
    }

    #[test]
    fn display_names_the_stall_site() {
        let msg = sample_npf().to_string();
        assert!(msg.contains("cycle 70000"));
        assert!(msg.contains("core 1"));
    }

    #[test]
    fn trace_error_converts() {
        let te = smtsim_trace::TraceError::Corrupt {
            offset: 56,
            detail: "checksum mismatch".into(),
        };
        let se: SimError = te.into();
        match &se {
            SimError::TraceCorrupt(m) => {
                assert!(m.contains("56"), "offset lost: {m}");
                assert!(m.contains("checksum mismatch"));
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
