#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # smtsim-core — CMP+SMT simulator driver for the MFLUSH reproduction
//!
//! Assembles the full machine of the paper: `N` two-context SMT cores
//! ([`smtsim_cpu::SmtCore`]) sharing one banked L2 behind
//! ([`smtsim_mem::MemoryModel`]), each core running a pluggable fetch
//! policy ([`smtsim_policy`]), fed by synthetic SPEC2000 traces
//! ([`smtsim_trace`]), with the paper's energy accounting
//! ([`smtsim_energy`]).
//!
//! * [`workloads`] — the paper's Fig. 1 workload table (2W1 … 8W5) plus
//!   the Fig. 5(b) special bzip2/twolf workload;
//! * [`topology`] — explicit machine geometry (cores, contexts per
//!   core, L2 clusters) plus the per-component fidelity selection
//!   (DESIGN.md §13), with a validating builder;
//! * [`config`] — one [`config::SimConfig`] describes a complete
//!   experiment (topology + machine + workload + policy + interval);
//! * [`sim`] — the cycle-level driver;
//! * [`result`] — measurement snapshot with throughput/energy helpers;
//! * [`sweep`] — a `std::thread::scope` parallel runner for parameter
//!   sweeps (each simulation is independent, so sweeps scale with host
//!   cores);
//! * [`report`] — plain-text tables matching the paper's figures;
//! * [`json`] — dependency-free JSON emission ([`json::ToJson`]) for
//!   machine-readable results;
//! * [`obs`] — cycle-level observability: merged event traces (JSONL
//!   and Chrome `trace_event` export) and the interval metrics sampler
//!   behind METRICS.md.

pub mod cache;
pub mod calibration;
pub mod config;
pub mod error;
pub mod json;
pub mod obs;
pub mod report;
pub mod result;
pub mod sim;
pub mod suggest;
pub mod sweep;
pub mod topology;
pub mod workloads;

pub use cache::{config_fingerprint, CacheEntry, ResultCache};
pub use calibration::{calibrate, calibrate_one, CalRow};
pub use error::{CoreDiagnostic, ProgressDiagnostic, SimError};
pub use json::ToJson;
pub use obs::{MetricsRecorder, TraceRow};
pub use config::SimConfig;
pub use topology::{CoreFidelity, Fidelity, MemFidelity, Topology, TopologyBuilder};
pub use result::SimResult;
pub use sim::Simulator;
pub use sweep::{run_sweep, run_sweep_journaled, run_sweep_ok, SweepJob};
pub use workloads::Workload;
