//! "Did you mean" support for unknown names.
//!
//! Lived in the `smtsim` CLI originally; promoted into the library so
//! [`crate::config::SimConfig::validate`] can attach the same typo
//! hints to unknown-benchmark errors that the CLI attaches to unknown
//! workload/policy names.

/// Edit distance with adjacent transpositions counted as one edit
/// (optimal string alignment — `mfc` is one typo from `mcf`, not two).
/// Case-sensitive; callers lowercase both sides first.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    // Three rolling rows: i-2, i-1, i.
    let mut prev2: Vec<usize> = vec![0; b.len() + 1];
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            let mut best = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
            if i > 0 && j > 0 && ca == b[j - 1] && a[i - 1] == cb {
                best = best.min(prev2[j - 1] + 1);
            }
            cur[j + 1] = best;
        }
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Closest candidate within an input-length-scaled edit budget. Short
/// names tolerate one edit, longer ones up to a third of their length;
/// anything further is noise, not a typo.
pub fn did_you_mean<'a>(input: &str, candidates: &[&'a str]) -> Option<&'a str> {
    let input = input.to_ascii_lowercase();
    let budget = (input.len() / 3).max(1);
    candidates
        .iter()
        .map(|c| (levenshtein(&input, &c.to_ascii_lowercase()), *c))
        .filter(|(d, _)| *d <= budget)
        .min_by_key(|(d, _)| *d)
        .map(|(_, c)| c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_distance_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("mflush", "mflsh"), 1);
        assert_eq!(levenshtein("mfc", "mcf"), 1, "transposition is one edit");
    }

    #[test]
    fn suggestions_catch_close_typos() {
        let names = ["icount", "mflush", "flush-ns", "dcra"];
        assert_eq!(did_you_mean("mflsh", &names), Some("mflush"));
        assert_eq!(did_you_mean("icont", &names), Some("icount"));
        assert_eq!(did_you_mean("FLUSH-NS", &names), Some("flush-ns"));
    }

    #[test]
    fn distant_garbage_gets_no_suggestion() {
        let names = ["icount", "mflush"];
        assert_eq!(did_you_mean("zzzzzzzzzz", &names), None);
        assert_eq!(did_you_mean("qqqq", &names), None);
    }
}
