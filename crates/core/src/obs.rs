//! Cycle-level observability: trace merging/export and the interval
//! metrics sampler (DESIGN.md §12).
//!
//! The leaf types live in [`smtsim_obs`] (so `smtsim-cpu` and
//! `smtsim-mem` can emit events without depending on the driver); this
//! module owns everything that needs the whole machine or the JSON
//! emitter:
//!
//! * [`collect_rows`] — merge the per-component event rings into one
//!   deterministic stream ordered by `(cycle, rank, seq)`, where rank 0
//!   is the memory system and rank `1 + core_id` is a core;
//! * [`trace_jsonl`] / [`observability_jsonl`] — one JSON object per
//!   line, events interleaved with metric samples by cycle;
//! * [`chrome_trace`] — the same stream as a Chrome `trace_event` JSON
//!   document loadable in `about:tracing` or Perfetto;
//! * [`MetricsRecorder`] — samples every registered metric every `N`
//!   cycles from the live [`SmtCore`]s and [`MemoryModel`];
//! * [`all_metrics`] / [`metrics_markdown`] — the cross-crate registry
//!   and the generator behind METRICS.md.
//!
//! Everything here is driven by simulated time only, so same-seed runs
//! produce byte-identical output (`crates/core/tests/obs_trace.rs`).
//!
//! # Example
//!
//! ```
//! use smtsim_core::{obs, SimConfig, Simulator, Workload};
//! use smtsim_policy::PolicyKind;
//!
//! let cfg = SimConfig::for_workload(
//!     Workload::by_name("4W3").unwrap(),
//!     PolicyKind::FlushSpec(30),
//! )
//! .with_cycles(3_000);
//! let mut sim = Simulator::build(&cfg).unwrap();
//! sim.enable_tracing(smtsim_core::config::DEFAULT_TRACE_CAPACITY);
//! sim.enable_metrics(1_000);
//! sim.step(cfg.cycles).unwrap();
//!
//! let rows = sim.trace_rows();
//! assert!(!rows.is_empty(), "a running machine emits events");
//! let jsonl = obs::observability_jsonl(&rows, sim.metrics_samples());
//! assert!(jsonl.lines().all(|l| l.starts_with("{\"cycle\":")));
//! ```

use crate::json::{JsonObject, ToJson};
use smtsim_cpu::{CoreStats, SmtCore};
use smtsim_mem::MemoryModel;
use smtsim_obs::{MetricKind, MetricSample, MetricSpec, TraceEvent, TraceRecord};

// ----------------------------------------------------------------
// The core crate's own metric registrations
// ----------------------------------------------------------------

/// Machine-wide committed instructions per cycle over the last
/// sampling interval.
pub const METRIC_THROUGHPUT_IPC: MetricSpec = MetricSpec {
    name: "core.throughput_ipc",
    unit: "instr/cycle",
    kind: MetricKind::Gauge,
    krate: "core",
    doc: "Machine-wide committed instructions per cycle over the last sampling interval (the paper's throughput metric).",
    figure: "Fig. 3",
};

/// All core-crate metrics, in registration order.
pub const METRICS: &[MetricSpec] = &[METRIC_THROUGHPUT_IPC];

/// Every registered metric across the workspace, in sampling order:
/// cpu, mem, policy, core, then the serve-layer service counters
/// (registered in `smtsim-obs` because core cannot depend on serve).
/// This is the single aggregation point the METRICS.md generator and
/// the sampler both consume; the sampler skips `krate == "serve"`
/// entries — those are host-side counters reported by `/healthz`.
pub fn all_metrics() -> Vec<MetricSpec> {
    let mut v = Vec::new();
    v.extend_from_slice(smtsim_cpu::METRICS);
    v.extend_from_slice(smtsim_mem::METRICS);
    v.extend_from_slice(smtsim_policy::METRICS);
    v.extend_from_slice(METRICS);
    v.extend_from_slice(smtsim_obs::SERVE_METRICS);
    v
}

// ----------------------------------------------------------------
// Merged trace rows
// ----------------------------------------------------------------

/// One event in the merged machine-wide stream: the record plus the
/// rank of the ring it came from (0 = memory system, `1 + core_id` =
/// that core). `(cycle, rank, seq)` is the total order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRow {
    /// Ring rank: 0 for the memory system, `1 + core_id` for a core.
    pub rank: u32,
    /// The recorded event.
    pub rec: TraceRecord,
}

/// Write the event's payload fields into an open JSON object.
fn event_payload(o: &mut JsonObject<'_>, ev: &TraceEvent) {
    match *ev {
        TraceEvent::FetchSlots { core, tid, slots } => {
            o.field("core", &core).field("tid", &tid).field("slots", &slots);
        }
        TraceEvent::Flush { core, tid, squashed } => {
            o.field("core", &core)
                .field("tid", &tid)
                .field("squashed", &squashed);
        }
        TraceEvent::Stall { core, tid } => {
            o.field("core", &core).field("tid", &tid);
        }
        TraceEvent::RobHighWater { core, tid, occupancy } => {
            o.field("core", &core)
                .field("tid", &tid)
                .field("occupancy", &occupancy);
        }
        TraceEvent::IqHighWater { core, occupancy } => {
            o.field("core", &core).field("occupancy", &occupancy);
        }
        TraceEvent::MshrAlloc { core, merged, occupancy } => {
            o.field("core", &core)
                .field("merged", &merged)
                .field("occupancy", &occupancy);
        }
        TraceEvent::MshrRetire { core, occupancy } => {
            o.field("core", &core).field("occupancy", &occupancy);
        }
        TraceEvent::L2BankEnqueue { bank, depth } => {
            o.field("bank", &bank).field("depth", &depth);
        }
        TraceEvent::DramRoundTrip { core, latency } => {
            o.field("core", &core).field("latency", &latency);
        }
    }
}

impl ToJson for TraceRow {
    fn write_json(&self, out: &mut String) {
        let src = if self.rank == 0 {
            String::from("mem")
        } else {
            format!("core{}", self.rank - 1)
        };
        let mut o = JsonObject::begin(out);
        o.field("cycle", &self.rec.cycle);
        o.field("src", &src);
        o.field("seq", &self.rec.seq);
        o.field("kind", &self.rec.event.kind());
        event_payload(&mut o, &self.rec.event);
        o.end();
    }
}

impl ToJson for MetricSample {
    fn write_json(&self, out: &mut String) {
        let mut o = JsonObject::begin(out);
        o.field("cycle", &self.cycle);
        o.field("src", &"metrics");
        o.field("metric", &self.name);
        o.field("instance", &self.instance);
        o.field("value", &self.value);
        o.end();
    }
}

/// Merge every enabled event ring (memory system first, then cores in
/// id order) into one stream sorted by `(cycle, rank, seq)`. The sort
/// key is total — no two records compare equal — so the merge is
/// deterministic regardless of collection order.
pub fn collect_rows(cores: &[SmtCore], mem: &MemoryModel) -> Vec<TraceRow> {
    let mut rows = Vec::new();
    if let Some(ring) = mem.trace() {
        rows.extend(ring.records().map(|r| TraceRow { rank: 0, rec: *r }));
    }
    for core in cores {
        if let Some(ring) = core.trace() {
            let rank = core.id() + 1;
            rows.extend(ring.records().map(|r| TraceRow { rank, rec: *r }));
        }
    }
    rows.sort_by_key(|r| (r.rec.cycle, r.rank, r.rec.seq));
    rows
}

/// Serialize merged rows as JSONL: one JSON object per line, in
/// `(cycle, rank, seq)` order.
pub fn trace_jsonl(rows: &[TraceRow]) -> String {
    let mut out = String::new();
    for row in rows {
        row.write_json(&mut out);
        out.push('\n');
    }
    out
}

/// Serialize events and metric samples as one interleaved JSONL
/// stream, ordered by cycle with events before samples on ties (a
/// sample at cycle `c` summarizes the interval ending at `c`, so it
/// reads *after* the events of that cycle).
pub fn observability_jsonl(rows: &[TraceRow], samples: &[MetricSample]) -> String {
    let mut out = String::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < rows.len() || j < samples.len() {
        let take_event =
            j >= samples.len() || (i < rows.len() && rows[i].rec.cycle <= samples[j].cycle);
        if take_event {
            rows[i].write_json(&mut out);
            i += 1;
        } else {
            samples[j].write_json(&mut out);
            j += 1;
        }
        out.push('\n');
    }
    out
}

/// The payload of an instant event, wrapped so it serializes as the
/// Chrome `args` object.
struct ChromeArgs(TraceEvent);

impl ToJson for ChromeArgs {
    fn write_json(&self, out: &mut String) {
        let mut o = JsonObject::begin(out);
        event_payload(&mut o, &self.0);
        o.end();
    }
}

/// A counter value, wrapped so it serializes as `{"value": v}`.
struct ChromeCounterArgs(f64);

impl ToJson for ChromeCounterArgs {
    fn write_json(&self, out: &mut String) {
        let mut o = JsonObject::begin(out);
        o.field("value", &self.0);
        o.end();
    }
}

/// A process name, wrapped so it serializes as `{"name": s}`.
struct ChromeProcessName(String);

impl ToJson for ChromeProcessName {
    fn write_json(&self, out: &mut String) {
        let mut o = JsonObject::begin(out);
        o.field("name", &self.0);
        o.end();
    }
}

/// The thread lane an event renders on in the Chrome view: the SMT
/// context for per-thread events, 0 otherwise.
fn chrome_tid(ev: &TraceEvent) -> u32 {
    match *ev {
        TraceEvent::FetchSlots { tid, .. }
        | TraceEvent::Flush { tid, .. }
        | TraceEvent::Stall { tid, .. }
        | TraceEvent::RobHighWater { tid, .. } => tid,
        _ => 0,
    }
}

/// Export events and samples as a Chrome `trace_event` JSON document
/// (the `{"traceEvents": [...]}` object form), loadable in
/// `about:tracing` or [Perfetto](https://ui.perfetto.dev).
///
/// Mapping (DESIGN.md §12): simulated cycles become microseconds
/// (`ts`), the memory system is pid 0 and core `i` is pid `i + 1`,
/// events are thread-scoped instants (`ph:"i"`, `s:"t"`) named by
/// their [`TraceEvent::kind`], and metric samples are counter events
/// (`ph:"C"`) named `metric[instance]` on pid 0.
pub fn chrome_trace(rows: &[TraceRow], samples: &[MetricSample]) -> String {
    let mut s = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |s: &mut String| {
        if first {
            first = false;
        } else {
            s.push(',');
        }
    };
    // Process-name metadata so the viewer labels pids meaningfully.
    let max_rank = rows.iter().map(|r| r.rank).max().unwrap_or(0);
    for rank in 0..=max_rank {
        let label = if rank == 0 {
            String::from("mem")
        } else {
            format!("core{}", rank - 1)
        };
        sep(&mut s);
        let mut o = JsonObject::begin(&mut s);
        o.field("name", &"process_name");
        o.field("ph", &"M");
        o.field("pid", &rank);
        o.field("args", &ChromeProcessName(label));
        o.end();
    }
    for row in rows {
        sep(&mut s);
        let mut o = JsonObject::begin(&mut s);
        o.field("name", &row.rec.event.kind());
        o.field("ph", &"i");
        o.field("ts", &row.rec.cycle);
        o.field("pid", &row.rank);
        o.field("tid", &chrome_tid(&row.rec.event));
        o.field("s", &"t");
        o.field("args", &ChromeArgs(row.rec.event));
        o.end();
    }
    for sample in samples {
        sep(&mut s);
        let mut o = JsonObject::begin(&mut s);
        o.field("name", &format!("{}[{}]", sample.name, sample.instance));
        o.field("ph", &"C");
        o.field("ts", &sample.cycle);
        o.field("pid", &0u32);
        o.field("args", &ChromeCounterArgs(sample.value));
        o.end();
    }
    s.push_str("]}");
    s
}

// ----------------------------------------------------------------
// Interval metrics sampling
// ----------------------------------------------------------------

/// Counter values at the previous sample instant, for interval deltas.
struct PrevCounters {
    /// Per-global-thread committed instructions.
    committed: Vec<u64>,
    /// Per-global-thread fetched instructions.
    fetched: Vec<u64>,
    /// Per-core executed flushes.
    flushes: Vec<u64>,
    /// Per-core executed stalls.
    stalls: Vec<u64>,
    /// Per-L2-bank (hits, misses).
    banks: Vec<(u64, u64)>,
}

/// Samples every registered metric (see [`all_metrics`]) every
/// `interval` cycles. Values derive exclusively from the simulated
/// machine's integer counters, so sampling is replay-stable and does
/// not perturb the simulation.
pub struct MetricsRecorder {
    interval: u64,
    samples: Vec<MetricSample>,
    prev: Option<PrevCounters>,
}

impl MetricsRecorder {
    /// Create a recorder sampling every `interval` cycles (clamped to
    /// at least 1).
    pub fn new(interval: u64) -> MetricsRecorder {
        MetricsRecorder {
            interval: interval.max(1),
            samples: Vec::new(),
            prev: None,
        }
    }

    /// The sampling interval in cycles.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// `true` when `now` is a sample instant (a positive multiple of
    /// the interval).
    pub fn due(&self, now: u64) -> bool {
        now > 0 && now.is_multiple_of(self.interval)
    }

    /// All samples recorded so far, in `(cycle, registry order,
    /// instance)` order.
    pub fn samples(&self) -> &[MetricSample] {
        &self.samples
    }

    /// Take one sample of every registered metric at cycle `now`.
    /// Samples are appended in registry order (cpu, mem, policy, core),
    /// instances in index order within each metric.
    // lint: allow(D10) -- opt-in interval sampling: snapshots allocate by design and never run in golden-figure configs
    pub fn sample(&mut self, now: u64, cores: &[SmtCore], mem: &MemoryModel) {
        let stats: Vec<CoreStats> = cores.iter().map(|c| c.stats()).collect();
        let committed: Vec<u64> = stats
            .iter()
            .flat_map(|s| s.threads.iter().map(|t| t.committed))
            .collect();
        let fetched: Vec<u64> = stats
            .iter()
            .flat_map(|s| s.threads.iter().map(|t| t.fetched))
            .collect();
        let flushes: Vec<u64> = stats.iter().map(|s| s.flushes_executed).collect();
        let stalls: Vec<u64> = stats.iter().map(|s| s.stalls_executed).collect();
        let banks = mem.bank_cache_stats();
        let prev = self.prev.take().unwrap_or(PrevCounters {
            committed: vec![0; committed.len()],
            fetched: vec![0; fetched.len()],
            flushes: vec![0; flushes.len()],
            stalls: vec![0; stalls.len()],
            banks: vec![(0, 0); banks.len()],
        });
        let dt = self.interval as f64;

        // cpu.thread.ipc — per global thread.
        for (i, (&c, &p)) in committed.iter().zip(&prev.committed).enumerate() {
            self.push(now, smtsim_cpu::metrics::METRIC_THREAD_IPC.name, i as u32, (c - p) as f64 / dt);
        }
        // cpu.thread.fetch_share — per global thread, normalized within
        // each core (fetch slots are a per-core resource).
        let mut gtid = 0usize;
        for s in &stats {
            let n = s.threads.len();
            let deltas: Vec<u64> = (0..n)
                .map(|k| fetched[gtid + k] - prev.fetched[gtid + k])
                .collect();
            let total: u64 = deltas.iter().sum();
            for (k, &df) in deltas.iter().enumerate() {
                let share = if total == 0 { 0.0 } else { df as f64 / total as f64 };
                self.push(
                    now,
                    smtsim_cpu::metrics::METRIC_THREAD_FETCH_SHARE.name,
                    (gtid + k) as u32,
                    share,
                );
            }
            gtid += n;
        }
        // cpu.core.flushes / cpu.core.stalls — cumulative counters.
        for (i, &f) in flushes.iter().enumerate() {
            self.push(now, smtsim_cpu::metrics::METRIC_CORE_FLUSHES.name, i as u32, f as f64);
        }
        for (i, &st) in stalls.iter().enumerate() {
            self.push(now, smtsim_cpu::metrics::METRIC_CORE_STALLS.name, i as u32, st as f64);
        }
        // mem.l2.bank_miss_rate — per bank, over the interval.
        for (b, (&(h, m), &(ph, pm))) in banks.iter().zip(&prev.banks).enumerate() {
            let accesses = (h + m) - (ph + pm);
            let misses = m - pm;
            let rate = if accesses == 0 { 0.0 } else { misses as f64 / accesses as f64 };
            self.push(now, smtsim_mem::metrics::METRIC_L2_BANK_MISS_RATE.name, b as u32, rate);
        }
        // mem.mshr.occupancy — per core, at the sample instant.
        for i in 0..cores.len() {
            let (occ, _) = mem.debug_mshr(i as u32);
            self.push(now, smtsim_mem::metrics::METRIC_MSHR_OCCUPANCY.name, i as u32, occ as f64);
        }
        // mem.dram.round_trips — machine-wide cumulative counter.
        self.push(
            now,
            smtsim_mem::metrics::METRIC_DRAM_ROUND_TRIPS.name,
            0,
            mem.dram_round_trips() as f64,
        );
        // policy.trigger_rate — per core, responses per kilocycle.
        for i in 0..flushes.len() {
            let triggers = (flushes[i] - prev.flushes[i]) + (stalls[i] - prev.stalls[i]);
            self.push(
                now,
                smtsim_policy::metrics::METRIC_TRIGGER_RATE.name,
                i as u32,
                triggers as f64 * 1000.0 / dt,
            );
        }
        // core.throughput_ipc — machine-wide.
        let d_committed: u64 = committed
            .iter()
            .zip(&prev.committed)
            .map(|(&c, &p)| c - p)
            .sum();
        self.push(now, METRIC_THROUGHPUT_IPC.name, 0, d_committed as f64 / dt);

        self.prev = Some(PrevCounters {
            committed,
            fetched,
            flushes,
            stalls,
            banks,
        });
    }

    fn push(&mut self, cycle: u64, name: &'static str, instance: u32, value: f64) {
        self.samples.push(MetricSample {
            cycle,
            name,
            instance,
            value,
        });
    }
}

// ----------------------------------------------------------------
// METRICS.md generation
// ----------------------------------------------------------------

/// Render the metrics reference — the exact content of METRICS.md.
/// `crates/core/tests/metrics_doc.rs` fails when the checked-in file
/// drifts from this in either direction; regenerate with
/// `BLESS=1 cargo test -p smtsim-core --test metrics_doc`.
pub fn metrics_markdown() -> String {
    let mut s = String::new();
    s.push_str("# Metrics reference\n\n");
    s.push_str(
        "Every registered metric, one row per registration: the\n\
         simulator metrics the interval sampler records, plus the\n\
         `serve` service counters reported by `smtsim serve`'s\n\
         `/healthz` endpoint. **Generated** from the `MetricSpec` constants by\n\
         `metrics_markdown()` in `crates/core/src/obs.rs` — edit the\n\
         constants, then regenerate with\n\
         `BLESS=1 cargo test -p smtsim-core --test metrics_doc`.\n\
         Lint rule D8 cross-checks the registrations against this file.\n\n",
    );
    s.push_str(
        "Counters report the cumulative value at the sample instant;\n\
         gauges report an instantaneous or interval-derived value. See\n\
         DESIGN.md \u{a7}12 for sampling semantics.\n\n",
    );
    s.push_str("| Name | Kind | Unit | Crate | Paper figure | Description |\n");
    s.push_str("|------|------|------|-------|--------------|-------------|\n");
    for m in all_metrics() {
        let figure = if m.figure.is_empty() { "\u{2014}" } else { m.figure };
        s.push_str(&format!(
            "| `{}` | {} | {} | {} | {} | {} |\n",
            m.name,
            m.kind.as_str(),
            m.unit,
            m.krate,
            figure,
            m.doc
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_dotted_lowercase() {
        let metrics = all_metrics();
        let mut names: Vec<&str> = metrics.iter().map(|m| m.name).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate metric name registered");
        for n in names {
            assert!(
                n.contains('.')
                    && n.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
                "metric name {n:?} is not dotted lowercase"
            );
        }
    }

    #[test]
    fn every_registration_is_documented() {
        let doc = metrics_markdown();
        for m in all_metrics() {
            assert!(
                doc.contains(&format!("`{}`", m.name)),
                "{} missing from metrics_markdown()",
                m.name
            );
            assert!(!m.unit.is_empty(), "{} has no unit", m.name);
            assert!(!m.doc.is_empty(), "{} has no doc string", m.name);
        }
    }

    #[test]
    fn jsonl_rows_are_single_line_objects() {
        let row = TraceRow {
            rank: 2,
            rec: TraceRecord {
                cycle: 42,
                seq: 7,
                event: TraceEvent::Flush {
                    core: 1,
                    tid: 0,
                    squashed: 13,
                },
            },
        };
        assert_eq!(
            row.to_json(),
            "{\"cycle\":42,\"src\":\"core1\",\"seq\":7,\"kind\":\"flush\",\
             \"core\":1,\"tid\":0,\"squashed\":13}"
        );
        let sample = MetricSample {
            cycle: 100,
            name: "core.throughput_ipc",
            instance: 0,
            value: 1.5,
        };
        assert_eq!(
            sample.to_json(),
            "{\"cycle\":100,\"src\":\"metrics\",\"metric\":\"core.throughput_ipc\",\
             \"instance\":0,\"value\":1.5}"
        );
    }

    #[test]
    fn interleave_puts_events_before_samples_on_ties() {
        let rows = vec![
            TraceRow {
                rank: 0,
                rec: TraceRecord {
                    cycle: 10,
                    seq: 0,
                    event: TraceEvent::L2BankEnqueue { bank: 0, depth: 1 },
                },
            },
            TraceRow {
                rank: 1,
                rec: TraceRecord {
                    cycle: 20,
                    seq: 0,
                    event: TraceEvent::Stall { core: 0, tid: 1 },
                },
            },
        ];
        let samples = vec![MetricSample {
            cycle: 10,
            name: "core.throughput_ipc",
            instance: 0,
            value: 0.5,
        }];
        let out = observability_jsonl(&rows, &samples);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("l2_bank_enqueue"));
        assert!(lines[1].contains("core.throughput_ipc"));
        assert!(lines[2].contains("\"stall\""));
    }

    #[test]
    fn chrome_trace_is_valid_json_with_metadata() {
        let rows = vec![TraceRow {
            rank: 1,
            rec: TraceRecord {
                cycle: 5,
                seq: 0,
                event: TraceEvent::FetchSlots {
                    core: 0,
                    tid: 0,
                    slots: 8,
                },
            },
        }];
        let samples = vec![MetricSample {
            cycle: 5,
            name: "cpu.thread.ipc",
            instance: 3,
            value: 0.25,
        }];
        let doc = chrome_trace(&rows, &samples);
        assert!(crate::json::parse_json(&doc).is_ok(), "must parse: {doc}");
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.contains("\"process_name\""));
        assert!(doc.contains("\"ph\":\"i\""));
        assert!(doc.contains("\"cpu.thread.ipc[3]\""));
        assert!(doc.contains("\"ph\":\"C\""));
    }

    #[test]
    fn markdown_has_one_row_per_metric() {
        let doc = metrics_markdown();
        let rows = doc
            .lines()
            .filter(|l| l.starts_with("| `"))
            .count();
        assert_eq!(rows, all_metrics().len());
    }
}
