//! Per-benchmark calibration: run each SPEC2000 profile paired with
//! itself on one core and report the metrics that the synthetic-trace
//! substitution promises (DESIGN.md §4). The ordering tests here are
//! the guard-rail that keeps profile tuning honest: whatever the
//! absolute numbers, `mcf` must stay the worst-behaved integer code and
//! `eon`/`gzip` the best-behaved ones, or every paper figure loses its
//! meaning.

use crate::config::SimConfig;
use crate::sim::Simulator;
use crate::sweep::{run_sweep_ok, SweepJob};
use smtsim_policy::PolicyKind;
use smtsim_trace::spec;

/// One benchmark's measured behaviour (self-paired on one SMT core
/// under ICOUNT).
#[derive(Debug, Clone)]
pub struct CalRow {
    /// Benchmark name (the paper's Fig. 1 legend key).
    pub name: String,
    /// Committed IPC per thread.
    pub ipc_per_thread: f64,
    /// Branch prediction accuracy (committed conditional branches).
    pub branch_accuracy: f64,
    /// L1D load miss rate.
    pub l1d_miss_rate: f64,
    /// Shared-L2 demand hit rate.
    pub l2_hit_rate: f64,
    /// D-TLB miss rate per load+store.
    pub dtlb_miss_rate: f64,
}

/// Run the calibration suite (26 single-core simulations, parallel).
pub fn calibrate(cycles: u64, workers: usize) -> Vec<CalRow> {
    let jobs: Vec<SweepJob> = spec::ALL_BENCHMARKS
        .iter()
        .map(|b| {
            SweepJob::new(
                b.name,
                SimConfig::for_benchmarks(&[b.name, b.name], PolicyKind::Icount)
                    .with_cycles(cycles),
            )
        })
        .collect();
    run_sweep_ok(&jobs, workers)
        .into_iter()
        .map(|(name, r)| {
            let core = &r.cores[0];
            let mem = &r.mem.cores[0];
            let branches: u64 = core.threads.iter().map(|t| t.branches).sum();
            let mispredicts: u64 = core.threads.iter().map(|t| t.mispredicts).sum();
            CalRow {
                name,
                ipc_per_thread: r.throughput() / core.threads.len() as f64,
                branch_accuracy: if branches == 0 {
                    1.0
                } else {
                    1.0 - mispredicts as f64 / branches as f64
                },
                l1d_miss_rate: if mem.loads == 0 {
                    0.0
                } else {
                    mem.load_l1_misses as f64 / mem.loads as f64
                },
                l2_hit_rate: {
                    let d = mem.l2_hits + mem.l2_misses;
                    if d == 0 {
                        0.0
                    } else {
                        mem.l2_hits as f64 / d as f64
                    }
                },
                dtlb_miss_rate: {
                    let d = mem.loads + mem.stores;
                    if d == 0 {
                        0.0
                    } else {
                        mem.dtlb_misses as f64 / d as f64
                    }
                },
            }
        })
        .collect()
}

/// Run calibration for a single benchmark (cheaper for tests).
pub fn calibrate_one(name: &str, cycles: u64) -> CalRow {
    let cfg = SimConfig::for_benchmarks(&[name, name], PolicyKind::Icount).with_cycles(cycles);
    let r = Simulator::build(&cfg)
        .expect("calibration config is valid")
        .run()
        .expect("calibration runs make forward progress");
    let core = &r.cores[0];
    let mem = &r.mem.cores[0];
    let branches: u64 = core.threads.iter().map(|t| t.branches).sum();
    let mispredicts: u64 = core.threads.iter().map(|t| t.mispredicts).sum();
    CalRow {
        name: name.to_string(),
        ipc_per_thread: r.throughput() / core.threads.len() as f64,
        branch_accuracy: if branches == 0 {
            1.0
        } else {
            1.0 - mispredicts as f64 / branches as f64
        },
        l1d_miss_rate: if mem.loads == 0 {
            0.0
        } else {
            mem.load_l1_misses as f64 / mem.loads as f64
        },
        l2_hit_rate: {
            let d = mem.l2_hits + mem.l2_misses;
            if d == 0 {
                0.0
            } else {
                mem.l2_hits as f64 / d as f64
            }
        },
        dtlb_miss_rate: {
            let d = mem.loads + mem.stores;
            if d == 0 {
                0.0
            } else {
                mem.dtlb_misses as f64 / d as f64
            }
        },
    }
}

/// Render the calibration rows as a JSON array (machine-readable twin
/// of [`calibration_table`]).
pub fn calibration_json(rows: &[CalRow]) -> String {
    use crate::json::ToJson;
    rows.to_json()
}

/// Render a calibration table.
pub fn calibration_table(rows: &[CalRow]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<10}{:>9}{:>9}{:>9}{:>9}{:>9}",
        "bench", "ipc/thr", "br acc", "l1d m%", "l2 hit%", "dtlb m%"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<10}{:>9.3}{:>9.3}{:>9.2}{:>9.2}{:>9.3}",
            r.name,
            r.ipc_per_thread,
            r.branch_accuracy,
            100.0 * r.l1d_miss_rate,
            100.0 * r.l2_hit_rate,
            100.0 * r.dtlb_miss_rate
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const CYCLES: u64 = 25_000;

    #[test]
    fn memory_bound_threads_behave_memory_bound() {
        let mcf = calibrate_one("mcf", CYCLES);
        let eon = calibrate_one("eon", CYCLES);
        assert!(
            mcf.ipc_per_thread < eon.ipc_per_thread / 3.0,
            "mcf {:.3} vs eon {:.3}",
            mcf.ipc_per_thread,
            eon.ipc_per_thread
        );
        assert!(mcf.l1d_miss_rate > 3.0 * eon.l1d_miss_rate);
    }

    #[test]
    fn ilp_threads_are_fast() {
        for name in ["gzip", "eon", "mesa", "sixtrack"] {
            let r = calibrate_one(name, CYCLES);
            assert!(
                r.ipc_per_thread > 0.6,
                "{name}: ipc {:.3} too low for an ILP code",
                r.ipc_per_thread
            );
        }
    }

    #[test]
    fn streamers_miss_the_l1_heavily() {
        for name in ["swim", "lucas", "art"] {
            let r = calibrate_one(name, CYCLES);
            assert!(
                r.l1d_miss_rate > 0.10,
                "{name}: l1d miss {:.3} too low for a streamer",
                r.l1d_miss_rate
            );
        }
    }

    #[test]
    fn fp_codes_predict_branches_well() {
        for name in ["swim", "wupwise", "lucas"] {
            let r = calibrate_one(name, CYCLES);
            assert!(
                r.branch_accuracy > 0.93,
                "{name}: acc {:.3}",
                r.branch_accuracy
            );
        }
    }

    #[test]
    fn table_renders_all_rows() {
        let rows = vec![
            calibrate_one("gzip", 5_000),
            calibrate_one("mcf", 5_000),
        ];
        let t = calibration_table(&rows);
        assert!(t.contains("gzip"));
        assert!(t.contains("mcf"));
        let j = calibration_json(&rows);
        assert!(j.starts_with("[{\"name\":\"gzip\",\"ipc_per_thread\":"));
        assert!(j.contains("{\"name\":\"mcf\""));
    }
}
