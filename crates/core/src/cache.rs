//! Persistent fingerprint-keyed result cache (DESIGN.md §15).
//!
//! The serving layer (`smtsim-serve`) answers repeat sweep queries
//! without re-simulating: a completed job's [`SimResult`] (or its
//! deterministic [`SimError`]) is stored in an append-only JSONL file
//! keyed by the FNV-1a fingerprint of the config's JSON — the same
//! fingerprint the sweep journal (PR 3) uses to detect stale entries.
//! Because every raw field in our JSON is an integer/bool/string, a
//! replayed entry re-serialises **byte-identically** to the fresh run
//! that produced it; that invariant is what makes a cached HTTP answer
//! indistinguishable from a recomputed one.
//!
//! The line format extends the journal format with a self-checksum:
//!
//! ```text
//! {"job":N,"label":"...","cfg":"<fnv64 hex>","ok":true,"result":{...},"sum":"<fnv64 hex>"}
//! ```
//!
//! `sum` is the FNV-1a hash of the line *without* the `sum` field. A
//! torn tail (kill -9 mid-append), a truncated line, or a flipped bit
//! anywhere either breaks the JSON parse, breaks the checksum, or
//! flips the checksum itself — all three read as "skip and
//! re-simulate", never as a wrong cached answer and never as a panic
//! (`crates/serve/tests/corruption.rs` fuzzes exactly this).

use crate::config::SimConfig;
use crate::error::SimError;
use crate::json::{parse_json, JsonObject, ToJson};
use crate::result::SimResult;
use crate::sweep::JobOutcome;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// FNV-1a 64-bit — the config fingerprint and cache-line checksum.
/// Pinned by tests: this is a file format, not an implementation
/// detail.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The 16-hex-digit FNV-1a fingerprint of a config's canonical JSON.
/// Identical configs — and only identical configs, up to hash
/// collision — share a fingerprint; the sweep journal and the serve
/// cache both key on it.
pub fn config_fingerprint(cfg: &SimConfig) -> String {
    format!("{:016x}", fnv64(cfg.to_json().as_bytes()))
}

/// One cached outcome: the label it was computed under plus the result
/// or deterministic error.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// Free-form label recorded at store time (e.g. the request's
    /// policy/benchmark summary).
    pub label: String,
    /// The cached outcome.
    pub outcome: JobOutcome,
}

/// An append-only, fingerprint-keyed store of job outcomes.
///
/// Opening reads every line, silently skipping anything torn, stale or
/// corrupt (the count is kept for observability). Storing appends one
/// checksummed line and updates the in-memory map. With no backing
/// path the cache is memory-only — same semantics, no persistence.
#[derive(Debug)]
pub struct ResultCache {
    path: Option<PathBuf>,
    entries: BTreeMap<String, CacheEntry>,
    skipped: u64,
    seq: u64,
}

impl ResultCache {
    /// A memory-only cache (no persistence).
    pub fn in_memory() -> ResultCache {
        ResultCache {
            path: None,
            entries: BTreeMap::new(),
            skipped: 0,
            seq: 0,
        }
    }

    /// Open (or create) the cache file at `path`, replaying every
    /// intact line. Corrupt lines are counted in [`ResultCache::skipped_lines`]
    /// and otherwise ignored; an unreadable file behaves as empty.
    pub fn load_from(path: &Path) -> ResultCache {
        let mut cache = ResultCache {
            path: Some(path.to_path_buf()),
            entries: BTreeMap::new(),
            skipped: 0,
            seq: 0,
        };
        let mut file = match File::open(path) {
            Ok(f) => f,
            Err(_) => return cache, // fresh cache: nothing recorded yet
        };
        // Byte-split rather than BufRead::lines(): a single flipped
        // bit can make a line invalid UTF-8, and that must cost one
        // line (lossy decode breaks its checksum), not abort the load
        // and orphan every intact entry after it.
        let mut data = Vec::new();
        if file.read_to_end(&mut data).is_err() {
            return cache;
        }
        for raw in data.split(|&b| b == b'\n') {
            if raw.is_empty() {
                continue;
            }
            let line = String::from_utf8_lossy(raw);
            match parse_cache_line(&line) {
                Some((fp, entry)) => {
                    cache.seq += 1;
                    cache.entries.insert(fp, entry);
                }
                None => cache.skipped = cache.skipped.saturating_add(1),
            }
        }
        // A torn final line (kill -9 mid-append) has no trailing
        // newline; appending straight after it would weld the next
        // entry onto the garbage and lose both. Close the wound once
        // at open time so appends always start on a fresh line.
        if let Ok(mut f) = OpenOptions::new().read(true).append(true).open(path) {
            let mut last = [0u8; 1];
            let read_tail =
                f.seek(SeekFrom::End(-1)).is_ok() && f.read_exact(&mut last).is_ok();
            if read_tail && last[0] != b'\n' {
                let _ = f.write_all(b"\n");
            }
        }
        cache
    }

    /// Look up the cached outcome for a config fingerprint.
    pub fn cached(&self, fingerprint: &str) -> Option<&CacheEntry> {
        self.entries.get(fingerprint)
    }

    /// Number of cached entries.
    pub fn entry_count(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Lines skipped at load time because they were torn or corrupt.
    pub fn skipped_lines(&self) -> u64 {
        self.skipped
    }

    /// The on-disk journal path, if this cache persists (the serving
    /// layer's torn-write fault injection appends half a line here).
    pub fn backing_path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Next line sequence number (what `store_outcome` would stamp).
    pub fn next_seq(&self) -> u64 {
        self.seq
    }

    /// Store an outcome under `fingerprint`, appending a checksummed
    /// line to the backing file (when there is one). A failed append is
    /// reported but non-fatal: the entry still serves from memory — a
    /// cache that cannot persist degrades, it does not take requests
    /// down with it.
    pub fn store_outcome(&mut self, fingerprint: &str, label: &str, outcome: &JobOutcome) {
        let line = format_cache_line(self.seq, label, fingerprint, outcome);
        self.seq += 1;
        self.entries.insert(
            fingerprint.to_string(),
            CacheEntry {
                label: label.to_string(),
                outcome: outcome.clone(),
            },
        );
        if let Some(path) = &self.path {
            let appended = OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .and_then(|mut f| f.write_all(line.as_bytes()).and_then(|()| f.flush()));
            if let Err(e) = appended {
                eprintln!("warning: cache append failed for {}: {e}", path.display());
            }
        }
    }

    /// Force the backing file's contents to stable storage (graceful
    /// drain calls this before the process exits). A memory-only cache
    /// is a no-op; sync errors are reported, not fatal.
    pub fn sync_to_disk(&self) {
        if let Some(path) = &self.path {
            // An unopenable file means nothing was ever written: no-op.
            if let Ok(f) = OpenOptions::new().append(true).open(path) {
                if let Err(e) = f.sync_all() {
                    eprintln!("warning: cache fsync failed for {}: {e}", path.display());
                }
            }
        }
    }
}

/// Render one cache line (with trailing newline). Public so tests and
/// the corruption fuzzer build lines the exact way the cache does.
pub fn format_cache_line(
    seq: u64,
    label: &str,
    fingerprint: &str,
    outcome: &JobOutcome,
) -> String {
    let mut body = String::new();
    {
        let mut o = JsonObject::begin(&mut body);
        o.field("job", &seq)
            .field("label", &label)
            .field("cfg", &fingerprint);
        match outcome {
            Ok(r) => o.field("ok", &true).field("result", r),
            Err(e) => o.field("ok", &false).field("error", e),
        };
        o.end();
    }
    let sum = fnv64(body.as_bytes());
    body.pop(); // reopen the object to splice in the checksum
    body.push_str(&format!(",\"sum\":\"{sum:016x}\"}}\n"));
    body
}

/// Parse and verify one cache line. Returns `None` — never panics —
/// for anything torn, truncated, bit-flipped or otherwise not written
/// by [`format_cache_line`].
pub fn parse_cache_line(line: &str) -> Option<(String, CacheEntry)> {
    let v = parse_json(line).ok()?;
    let sum = v.req_str("sum").ok()?;
    // Re-derive the checksum over the line as it looked before the
    // `sum` field was spliced in.
    let idx = line.rfind(",\"sum\":\"")?;
    let mut prefix = line[..idx].to_string();
    prefix.push('}');
    if format!("{:016x}", fnv64(prefix.as_bytes())) != sum {
        return None;
    }
    let fingerprint = v.req_str("cfg").ok()?.to_string();
    let label = v.req_str("label").ok()?.to_string();
    let outcome = if v.req_bool("ok").ok()? {
        Ok(SimResult::from_json(v.get("result")?).ok()?)
    } else {
        Err(SimError::from_json(v.get("error")?).ok()?)
    };
    Some((fingerprint, CacheEntry { label, outcome }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::Workload;
    use smtsim_policy::PolicyKind;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("smtsim-cache-{}-{name}", std::process::id()))
    }

    fn small_outcome() -> JobOutcome {
        let w = Workload::by_name("2W1").unwrap();
        let cfg = SimConfig::for_workload(w, PolicyKind::Icount).with_cycles(2_000);
        crate::sim::Simulator::build(&cfg).unwrap().run()
    }

    #[test]
    fn fnv_fingerprint_is_stable() {
        // Pinned: the cache and journal share this exact hash. Changing
        // it silently invalidates every cache file in the field.
        assert_eq!(fnv64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv64(b"a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn line_roundtrip_is_byte_exact() {
        let outcome = small_outcome();
        let line = format_cache_line(0, "lbl", "00aa00aa00aa00aa", &outcome);
        let (fp, entry) = parse_cache_line(line.trim_end()).expect("intact line parses");
        assert_eq!(fp, "00aa00aa00aa00aa");
        assert_eq!(entry.label, "lbl");
        assert_eq!(
            entry.outcome.as_ref().unwrap().to_json(),
            outcome.as_ref().unwrap().to_json(),
            "replayed result must re-serialise byte-identically"
        );
    }

    #[test]
    fn truncation_and_flips_are_skipped_not_wrong() {
        let outcome = small_outcome();
        let line = format_cache_line(0, "lbl", "00aa00aa00aa00aa", &outcome);
        let line = line.trim_end();
        // Every truncation fails cleanly.
        for cut in 0..line.len() {
            assert!(parse_cache_line(&line[..cut]).is_none(), "cut at {cut}");
        }
        // A flipped digit inside the result keeps the JSON valid but
        // must fail the checksum.
        let pos = line.find("\"result\":").unwrap() + 12;
        let mut flipped = line.to_string();
        let b = flipped.as_bytes()[pos];
        if b.is_ascii_digit() {
            let nb = if b == b'9' { b'0' } else { b + 1 };
            flipped.replace_range(pos..pos + 1, std::str::from_utf8(&[nb]).unwrap());
            assert!(parse_cache_line(&flipped).is_none(), "checksum must catch a flipped digit");
        }
    }

    #[test]
    fn persistent_cache_survives_reload_and_counts_corruption() {
        let outcome = small_outcome();
        let path = temp_path("reload.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let mut c = ResultCache::load_from(&path);
            assert_eq!(c.entry_count(), 0);
            c.store_outcome("f1", "a", &outcome);
            c.store_outcome("f2", "b", &outcome);
            c.sync_to_disk();
        }
        // Append garbage + a torn copy of a real line.
        let text = std::fs::read_to_string(&path).unwrap();
        let first = text.lines().next().unwrap();
        std::fs::write(
            &path,
            format!("{text}not json at all\n{}\n", &first[..first.len() / 2]),
        )
        .unwrap();
        let c = ResultCache::load_from(&path);
        assert_eq!(c.entry_count(), 2);
        assert_eq!(c.skipped_lines(), 2);
        assert!(c.cached("f1").is_some());
        assert!(c.cached("f2").is_some());
        assert!(c.cached("f3").is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn memory_only_cache_works_without_a_path() {
        let outcome = small_outcome();
        let mut c = ResultCache::in_memory();
        c.store_outcome("fp", "lbl", &outcome);
        assert_eq!(c.entry_count(), 1);
        assert_eq!(c.cached("fp").unwrap().label, "lbl");
        c.sync_to_disk(); // no-op, must not error
    }

    #[test]
    fn config_fingerprint_tracks_config_identity() {
        let w = Workload::by_name("2W1").unwrap();
        let a = SimConfig::for_workload(w, PolicyKind::Icount);
        let b = a.clone();
        assert_eq!(config_fingerprint(&a), config_fingerprint(&b));
        let c = a.clone().with_seed(999);
        assert_ne!(config_fingerprint(&a), config_fingerprint(&c));
        assert_eq!(config_fingerprint(&a).len(), 16);
    }
}
