//! Stall skip-ahead pinning suite (DESIGN.md §16).
//!
//! The overhaul's admissibility bar is *byte-identity*: a run with
//! `skip_ahead` enabled must be indistinguishable from the
//! cycle-by-cycle run in every observable — result JSON, fault
//! diagnoses, watchdog fire cycles. These tests pin that bar from
//! three directions:
//!
//! 1. same-seed byte-identity with skip off vs on, across all four
//!    fidelity pairs (the skip must also engage, so the equality is
//!    exercised rather than vacuous);
//! 2. a `FaultPlan` whose consequences land inside what would
//!    otherwise be one unbounded idle window — the watchdog must fire
//!    at the exact same cycle with an identical structured diagnosis;
//! 3. a seeded mutation: re-running the engine's own skip targets
//!    through the public test hook reproduces the reference bytes,
//!    while overshooting every computed horizon by a single cycle is
//!    caught. A horizon with one cycle of slack anywhere in a 60k-run
//!    would slip through silently; this proves the equality gate has
//!    the resolution the invariant claims.

use smtsim_core::json::ToJson;
use smtsim_core::topology::{CoreFidelity, MemFidelity};
use smtsim_core::{Fidelity, SimConfig, Simulator, Workload};
use smtsim_mem::FaultPlan;
use smtsim_policy::PolicyKind;

const CYCLES: u64 = 60_000;

fn base(workload: &str) -> SimConfig {
    SimConfig::for_workload(Workload::by_name(workload).unwrap(), PolicyKind::Mflush)
        .with_cycles(CYCLES)
}

/// Run to the cycle budget; return (result JSON, skipped cycles).
fn run(cfg: &SimConfig) -> (String, u64) {
    let mut sim = Simulator::build(cfg).unwrap();
    sim.step(cfg.cycles).unwrap();
    (sim.snapshot().to_json(), sim.skipped_cycles())
}

#[test]
fn skip_is_byte_identical_across_all_fidelity_pairs() {
    for workload in ["2W1", "4W3"] {
        for mem in [MemFidelity::Detailed, MemFidelity::Fast] {
            for core in [CoreFidelity::Detailed, CoreFidelity::IpcApprox] {
                let fidelity = Fidelity { mem, core };
                let cfg = base(workload).with_fidelity(fidelity);
                let (off_json, off_skipped) =
                    run(&cfg.clone().with_skip_ahead(false));
                let (on_json, on_skipped) = run(&cfg.with_skip_ahead(true));
                assert_eq!(off_skipped, 0, "skip_ahead=false must never skip");
                assert_eq!(
                    off_json,
                    on_json,
                    "{workload}/{}: skip-ahead changed the result bytes",
                    fidelity.label()
                );
                // The default pair on the memory-bound workload must
                // actually engage the mechanism, otherwise the
                // equality above tests nothing. (`IpcApprox` opts out
                // of skip by design, and fast memory leaves no stall
                // window long enough to skip.)
                if workload == "2W1"
                    && core == CoreFidelity::Detailed
                    && mem == MemFidelity::Detailed
                {
                    assert!(
                        on_skipped > 0,
                        "{workload}/{}: skip never engaged; identity is vacuous",
                        fidelity.label()
                    );
                }
            }
        }
    }
}

#[test]
fn faults_inside_a_skipped_window_fire_at_the_exact_cycle() {
    // Every DRAM response is swallowed from cycle 2000: once both
    // threads block on lost lines the machine goes permanently idle,
    // so the watchdog's fire cycle sits inside what skip-ahead would
    // otherwise treat as one unbounded skip window. The clamp at
    // `last_progress + watchdog - 1` must make the abort — cycle
    // number, blamed core, full diagnosis — byte-identical.
    let mut cfg = base("2W1").with_watchdog(5_000);
    cfg.mem.faults = FaultPlan::none().dropping_dram_from(2_000);

    let mut off = Simulator::build(&cfg.clone().with_skip_ahead(false)).unwrap();
    let off_err = off
        .step(cfg.cycles)
        .expect_err("no DRAM responses: the watchdog must fire");

    let mut on = Simulator::build(&cfg.with_skip_ahead(true)).unwrap();
    let on_err = on
        .step(CYCLES)
        .expect_err("no DRAM responses: the watchdog must fire");

    assert!(
        on.skipped_cycles() > 0,
        "the wedged machine never skipped; the scenario is vacuous"
    );
    assert_eq!(
        format!("{off_err:?}"),
        format!("{on_err:?}"),
        "skip-ahead changed the watchdog diagnosis"
    );
    assert_eq!(
        off.snapshot().to_json(),
        on.snapshot().to_json(),
        "skip-ahead changed the post-abort machine state"
    );
}

/// Drive a skip-disabled simulator manually, applying the engine's own
/// skip targets plus `overshoot` cycles through the test hooks.
/// Returns (result JSON, number of skips applied).
fn drive_with_overshoot(cfg: &SimConfig, overshoot: u64) -> (String, u64) {
    let mut sim = Simulator::build(cfg).unwrap();
    let end = cfg.cycles;
    let mut skips = 0u64;
    while sim.now() < end {
        sim.step(1).unwrap();
        if sim.now() >= end {
            break;
        }
        if let Some(target) = sim.skip_target_for_test(end) {
            let target = (target + overshoot).min(end);
            if target > sim.now() {
                sim.force_skip_for_test(target);
                skips += 1;
            }
        }
    }
    (sim.snapshot().to_json(), skips)
}

#[test]
fn overshooting_the_horizon_by_one_cycle_is_caught() {
    let cfg = base("2W1").with_skip_ahead(false);
    let (reference, _) = run(&cfg);

    // Control: the engine's own targets, applied externally, are
    // byte-identical — the harness itself introduces no drift.
    let (exact_json, exact_skips) = drive_with_overshoot(&cfg, 0);
    assert!(exact_skips > 0, "control run never skipped; test is vacuous");
    assert_eq!(exact_json, reference, "exact horizons must be invisible");

    // Mutation: every skip lands one cycle past the computed horizon —
    // the first event at each window's end is processed a cycle late.
    // If this were not caught, `next_event_cycle` could be off by one
    // everywhere and the goldens would still pass.
    let (mutant_json, mutant_skips) = drive_with_overshoot(&cfg, 1);
    assert!(mutant_skips > 0, "mutant run never skipped; test is vacuous");
    assert_ne!(
        mutant_json, reference,
        "an off-by-one past every horizon went unnoticed by the byte-identity gate"
    );
}
