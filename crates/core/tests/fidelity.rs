//! Pluggable-fidelity equivalence and robustness suite (DESIGN.md §13).
//!
//! The refactor's load-bearing invariant: with
//! `fidelity = mem=detailed,core=detailed` (the default), every code
//! path — single run, policy sweep, journaled sweep with replay —
//! reproduces the pre-refactor output **byte for byte**. The fixtures
//! under `fixtures/fidelity/` were captured from the pre-refactor
//! binary (CLI default seed `0x5eed`; the mflush fixture pins
//! `--seed 7`) and are compared as raw bytes, never as parsed values.
//!
//! The reduced fidelities get the complementary guarantees: same-seed
//! byte-determinism, and config validation that *returns*
//! `SimError::InvalidConfig` instead of panicking, whatever geometry a
//! caller invents.

use smtsim_core::json::{write_escaped, JsonObject};
use smtsim_core::topology::{CoreFidelity, MemFidelity};
use smtsim_core::{
    run_sweep_journaled, Fidelity, SimConfig, SimError, Simulator, SweepJob, ToJson, Topology,
    Workload,
};
use smtsim_policy::PolicyKind;

fn golden(name: &str) -> String {
    let path = format!(
        "{}/tests/fixtures/fidelity/{name}",
        env!("CARGO_MANIFEST_DIR")
    );
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing fixture {path}: {e}"))
}

/// What `smtsim run --json` printed: the result JSON plus the trailing
/// newline from `println!`.
fn run_stdout(cfg: &SimConfig) -> String {
    let r = Simulator::build(cfg).unwrap().run().unwrap();
    format!("{}\n", r.to_json())
}

#[test]
fn detailed_run_reproduces_pre_refactor_goldens() {
    let cases: [(&str, &str, PolicyKind, u64, Option<u64>); 3] = [
        (
            "run_4W3_flush-s30_c6000.golden.json",
            "4W3",
            PolicyKind::FlushSpec(30),
            6_000,
            None,
        ),
        (
            "run_2W1_mflush_c10000_s7.golden.json",
            "2W1",
            PolicyKind::Mflush,
            10_000,
            Some(7),
        ),
        (
            "run_8W2_icount_c4000.golden.json",
            "8W2",
            PolicyKind::Icount,
            4_000,
            None,
        ),
    ];
    for (fixture, workload, policy, cycles, seed) in cases {
        let w = Workload::by_name(workload).unwrap();
        let mut cfg = SimConfig::for_workload(w, policy).with_cycles(cycles);
        if let Some(s) = seed {
            cfg = cfg.with_seed(s);
        }
        assert_eq!(
            cfg.fidelity(),
            Fidelity::detailed(),
            "default fidelity must be the golden-figure one"
        );
        assert_eq!(
            run_stdout(&cfg),
            golden(fixture),
            "{workload}/{policy:?} diverged from the pre-refactor bytes"
        );
    }
}

/// The exact job list `smtsim sweep` builds, for one workload.
fn sweep_jobs(workload: &str, cycles: u64) -> Vec<SweepJob> {
    let w = Workload::by_name(workload).unwrap();
    [
        PolicyKind::Icount,
        PolicyKind::FlushSpec(30),
        PolicyKind::FlushSpec(100),
        PolicyKind::FlushNonSpec,
        PolicyKind::StallSpec(30),
        PolicyKind::Mflush,
        PolicyKind::Dcra,
    ]
    .iter()
    .map(|p| {
        SweepJob::new(
            p.label(),
            SimConfig::for_workload(w, *p).with_cycles(cycles),
        )
    })
    .collect()
}

/// The `a+b` workload label `smtsim sweep` prints, recovered from the
/// first successful job so the fixture stays the single source of
/// truth for benchmark names.
fn out_workload(out: &[(String, Result<smtsim_core::SimResult, SimError>)]) -> String {
    out.iter()
        .find_map(|(_, r)| r.as_ref().ok())
        .expect("at least one sweep job must succeed")
        .workload
        .join("+")
}

/// Re-render `run_sweep_journaled` output the way `smtsim sweep --json`
/// does, so the fixture comparison covers the whole serialization path.
fn sweep_stdout(out: &[(String, Result<smtsim_core::SimResult, SimError>)]) -> String {
    let mut s = String::new();
    s.push_str("{\"workload\":");
    write_escaped(&mut s, &out_workload(out));
    s.push_str(",\"jobs\":[");
    for (i, (label, r)) in out.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let mut o = JsonObject::begin(&mut s);
        o.field("label", label);
        match r {
            Ok(res) => o.field("result", res),
            Err(e) => o.field("error", e),
        };
        o.end();
    }
    s.push_str("]}\n");
    s
}

#[test]
fn detailed_sweep_reproduces_pre_refactor_golden() {
    let out = run_sweep_journaled(&sweep_jobs("2W2", 3_000), 0, None);
    assert_eq!(sweep_stdout(&out), golden("sweep_2W2_c3000.golden.json"));
}

#[test]
fn journal_replay_reproduces_pre_refactor_golden() {
    // A journaled sweep, then a second sweep resuming from the same
    // journal: the replayed results must serialize to the same bytes
    // as the golden — the persistence round-trip is part of the
    // equivalence surface.
    let dir = std::env::temp_dir().join(format!("smtsim-fidelity-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("sweep.jsonl");
    let _ = std::fs::remove_file(&journal);

    let fresh = run_sweep_journaled(&sweep_jobs("2W2", 3_000), 0, Some(&journal));
    let replayed = run_sweep_journaled(&sweep_jobs("2W2", 3_000), 0, Some(&journal));
    let expected = golden("sweep_2W2_c3000.golden.json");
    assert_eq!(sweep_stdout(&fresh), expected, "journaled run diverged");
    assert_eq!(sweep_stdout(&replayed), expected, "journal replay diverged");

    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_dir(&dir);
}

#[test]
fn reduced_fidelity_is_same_seed_byte_deterministic() {
    let w = Workload::by_name("4W3").unwrap();
    let cfg = SimConfig::for_workload(w, PolicyKind::Mflush)
        .with_cycles(50_000)
        .with_fidelity(Fidelity::fast());
    let a = run_stdout(&cfg);
    let b = run_stdout(&cfg.clone());
    assert_eq!(a, b, "mem=fast,core=approx must be byte-deterministic");
}

#[test]
fn mixed_fidelities_run_end_to_end() {
    // The two off-diagonal combinations are valid machines too.
    let w = Workload::by_name("2W2").unwrap();
    for fidelity in [
        Fidelity { mem: MemFidelity::Fast, core: CoreFidelity::Detailed },
        Fidelity { mem: MemFidelity::Detailed, core: CoreFidelity::IpcApprox },
    ] {
        let cfg = SimConfig::for_workload(w, PolicyKind::Icount)
            .with_cycles(5_000)
            .with_fidelity(fidelity);
        let r = Simulator::build(&cfg).unwrap().run().unwrap();
        assert!(
            r.total_committed() > 100,
            "{} starved: {}",
            fidelity.label(),
            r.total_committed()
        );
    }
}

/// Tiny deterministic generator for the fuzz loop below (xorshift64*;
/// no external crates, fixed seed — same cases every run).
struct XorShift(u64);
impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[test]
fn invalid_topologies_error_and_never_panic() {
    // Directed cases: every way a Topology can be self-inconsistent or
    // disagree with the component configs.
    let w = Workload::by_name("2W2").unwrap();
    let mut directed: Vec<SimConfig> = Vec::new();
    for mutate in [
        (|c: &mut SimConfig| c.topology.cores = 0) as fn(&mut SimConfig),
        |c| c.topology.contexts_per_core = 0,
        |c| c.topology.l2_clusters = 0,
        |c| c.topology.l2_clusters = 3, // does not divide cores, disagrees with mem
        |c| c.topology.cores = 7,       // disagrees with mem.num_cores
        |c| c.topology.contexts_per_core = 5, // disagrees with core.contexts
        |c| c.benchmarks.push("mcf".into()), // no longer fills the topology
        |c| c.benchmarks.clear(),
    ] {
        let mut cfg = SimConfig::for_workload(w, PolicyKind::Icount);
        mutate(&mut cfg);
        directed.push(cfg);
    }
    for cfg in &directed {
        match Simulator::build(cfg) {
            Err(SimError::InvalidConfig(_)) => {}
            Err(e) => panic!("wrong error class for invalid topology: {e}"),
            Ok(_) => panic!("invalid topology accepted: {:?}", cfg.topology),
        }
    }

    // Seeded fuzz: arbitrary geometry must validate cleanly or reject
    // with InvalidConfig — building must never panic. Topology::builder
    // is the user-facing entry, so it gets the same treatment.
    let mut rng = XorShift(0x5eed_f1de_11ee_7e57);
    for _ in 0..500 {
        let cores = (rng.next() % 12) as u32;
        let contexts = (rng.next() % 6) as u32;
        let clusters = (rng.next() % 5) as u32;
        let built = Topology::builder()
            .cores(cores)
            .contexts_per_core(contexts)
            .l2_clusters(clusters)
            .build();
        let mut cfg = SimConfig::for_workload(w, PolicyKind::Icount);
        match built {
            Ok(topo) => cfg.topology = topo,
            Err(_) => continue, // rejected at the builder — also fine
        }
        match Simulator::build(&cfg) {
            Ok(_) | Err(SimError::InvalidConfig(_)) => {}
            Err(e) => panic!(
                "cores={cores} contexts={contexts} clusters={clusters}: wrong error class {e}"
            ),
        }
    }
}
