//! Golden-output test for the hand-rolled JSON emitter.
//!
//! A nested structure exercising every tricky corner of the writer —
//! string escaping, float formatting (integral, shortest-roundtrip,
//! non-finite), empty and nested collections, `Option` — is rendered
//! and compared byte-for-byte against a checked-in fixture. If the
//! emitter's output ever changes shape, this fails before any
//! downstream consumer of the JSON does.

use smtsim_core::json::JsonObject;
use smtsim_core::ToJson;

struct Inner {
    name: String,
    values: Vec<f64>,
    flag: bool,
}

impl ToJson for Inner {
    fn write_json(&self, out: &mut String) {
        let mut o = JsonObject::begin(out);
        o.field("name", &self.name);
        o.field("values", &self.values);
        o.field("flag", &self.flag);
        o.end();
    }
}

struct Outer {
    label: String,
    inner: Inner,
    empty: Vec<u32>,
    counts: [u64; 3],
    present: Option<i64>,
    absent: Option<i64>,
    integral: f64,
    third: f64,
    tiny: f64,
    huge: f64,
    not_a_number: f64,
    negative: i32,
}

impl ToJson for Outer {
    fn write_json(&self, out: &mut String) {
        let mut o = JsonObject::begin(out);
        o.field("label", &self.label);
        o.field("inner", &self.inner);
        o.field("empty", &self.empty);
        o.field("counts", &self.counts);
        o.field("present", &self.present);
        o.field("absent", &self.absent);
        o.field("integral", &self.integral);
        o.field("third", &self.third);
        o.field("tiny", &self.tiny);
        o.field("huge", &self.huge);
        o.field("not_a_number", &self.not_a_number);
        o.field("negative", &self.negative);
        o.end();
    }
}

#[test]
fn emitter_matches_checked_in_fixture() {
    let v = Outer {
        label: "quote \" backslash \\ newline \n tab \t bell \u{7}".to_string(),
        inner: Inner {
            name: "per-thread μops/cycle".to_string(),
            values: vec![0.5, 2.0, 1.25],
            flag: true,
        },
        empty: Vec::new(),
        counts: [0, 9_007_199_254_740_993, u64::MAX],
        present: Some(-42),
        absent: None,
        integral: 3.0,
        third: 1.0 / 3.0,
        // `Display` never uses scientific notation: these pin the plain
        // decimal expansions (and the `.0` suffix on the integral one).
        tiny: 2.5e-10,
        huge: 1e20,
        not_a_number: f64::NAN,
        negative: -7,
    };
    // `BLESS=1 cargo test -p smtsim-core --test golden_json` rewrites
    // the fixture after an intentional format change (the blessing run
    // still compares against the compiled-in copy; re-run to go green).
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(
            concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/emitter.golden.json"),
            v.to_json() + "\n",
        )
        .expect("write fixture");
    }
    let golden = include_str!("fixtures/emitter.golden.json");
    assert_eq!(v.to_json(), golden.trim_end());
}

#[test]
fn fixture_roundtrips_through_second_render() {
    // Rendering twice must be byte-stable (no hidden state in the
    // writer) — the determinism bar applied to the emitter itself.
    let v = Inner {
        name: "stable".to_string(),
        values: vec![f64::INFINITY, -0.0],
        flag: false,
    };
    assert_eq!(v.to_json(), v.to_json());
    assert_eq!(
        v.to_json(),
        r#"{"name":"stable","values":[null,-0.0],"flag":false}"#
    );
}
