//! Observability end-to-end guarantees (DESIGN.md §12).
//!
//! Three properties carry the whole feature:
//!
//! 1. **Replayable** — same seed, same trace: two traced runs of the
//!    same config produce byte-identical JSONL (events + metric
//!    samples) and byte-identical Chrome `trace_event` exports.
//! 2. **Non-perturbing** — tracing only observes: a traced run's
//!    result JSON is byte-identical to an untraced run's, and the
//!    untraced path is the pre-observability path (the unchanged
//!    golden fixture in `golden_json.rs` pins those bytes).
//! 3. **Diagnostic** — when a run dies on the §11 watchdog, the trace
//!    tail shows *why*: a `FaultPlan`-pinned L2 bank is visible as a
//!    growing bank queue before the watchdog fires.

use smtsim_core::config::{DEFAULT_TRACE_CAPACITY, SimConfig};
use smtsim_core::json::ToJson;
use smtsim_core::obs::{chrome_trace, observability_jsonl};
use smtsim_core::{SimError, Simulator, Workload};
use smtsim_mem::FaultPlan;
use smtsim_obs::TraceEvent;
use smtsim_policy::PolicyKind;

fn traced_cfg(seed: u64) -> SimConfig {
    let w = Workload::by_name("4W3").unwrap();
    SimConfig::for_workload(w, PolicyKind::Mflush)
        .with_cycles(20_000)
        .with_seed(seed)
}

/// Build, trace, run to completion, and export every format.
fn run_traced(cfg: &SimConfig) -> (String, String, String) {
    let mut sim = Simulator::build(cfg).unwrap();
    sim.enable_tracing(DEFAULT_TRACE_CAPACITY);
    sim.enable_metrics(2_000);
    sim.step(cfg.cycles).unwrap();
    let rows = sim.trace_rows();
    let jsonl = observability_jsonl(&rows, sim.metrics_samples());
    let chrome = chrome_trace(&rows, sim.metrics_samples());
    (jsonl, chrome, sim.snapshot().to_json())
}

#[test]
fn same_seed_traced_runs_are_byte_identical() {
    let cfg = traced_cfg(42);
    let (jsonl_a, chrome_a, result_a) = run_traced(&cfg);
    let (jsonl_b, chrome_b, result_b) = run_traced(&cfg);
    assert!(!jsonl_a.is_empty() && jsonl_a.lines().count() > 100);
    assert_eq!(jsonl_a, jsonl_b, "JSONL trace must replay byte-for-byte");
    assert_eq!(chrome_a, chrome_b, "Chrome export must replay byte-for-byte");
    assert_eq!(result_a, result_b);

    // A different seed must actually change the trace — otherwise the
    // byte-compares above prove nothing.
    let (jsonl_c, _, _) = run_traced(&traced_cfg(43));
    assert_ne!(jsonl_a, jsonl_c);
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    let cfg = traced_cfg(42);
    let untraced = Simulator::build(&cfg).unwrap().run().unwrap().to_json();
    let (_, _, traced) = run_traced(&cfg);
    assert_eq!(
        untraced, traced,
        "enabling the trace must not change a single result byte"
    );
}

#[test]
fn metrics_sampling_alone_does_not_perturb_either() {
    let cfg = traced_cfg(7);
    let untraced = Simulator::build(&cfg).unwrap().run().unwrap().to_json();
    let mut sim = Simulator::build(&cfg).unwrap();
    sim.enable_metrics(1_000);
    sim.step(cfg.cycles).unwrap();
    assert!(!sim.metrics_samples().is_empty());
    assert_eq!(sim.snapshot().to_json(), untraced);
}

#[test]
fn pinned_l2_bank_shows_in_the_trace_before_the_watchdog_fires() {
    const PIN_BANK: u32 = 1;
    const PIN_CYCLE: u64 = 2_000;
    // Four cores so the pinned bank collects traffic from 64 MSHRs,
    // not one core's 16 — the pile-up must dwarf healthy queueing.
    let w = Workload::by_name("8W3").unwrap();
    let mut cfg = SimConfig::for_workload(w, PolicyKind::Mflush)
        .with_cycles(60_000)
        .with_seed(5)
        .with_watchdog(5_000);
    cfg.mem.faults = FaultPlan::none().pinning_bank_from(PIN_BANK, PIN_CYCLE);

    let mut sim = Simulator::build(&cfg).unwrap();
    sim.enable_tracing(DEFAULT_TRACE_CAPACITY);
    let err = sim
        .step(cfg.cycles)
        .expect_err("a pinned L2 bank must wedge the machine");
    let fired_at = match err {
        SimError::NoForwardProgress { cycle, .. } => cycle,
        other => panic!("expected NoForwardProgress, got {other}"),
    };

    // The trace survives the abort, and the pinned bank's queue is
    // seen growing strictly between the pin and the watchdog: the
    // event tail diagnoses the livelock without a debugger.
    let mut depth_before_pin = 0u32;
    let mut depth_during_wedge = 0u32;
    for row in sim.trace_rows() {
        if let TraceEvent::L2BankEnqueue { bank, depth } = row.rec.event {
            if bank != PIN_BANK {
                continue;
            }
            if row.rec.cycle < PIN_CYCLE {
                depth_before_pin = depth_before_pin.max(depth);
            } else if row.rec.cycle < fired_at {
                depth_during_wedge = depth_during_wedge.max(depth);
            }
        }
    }
    assert!(
        depth_during_wedge > depth_before_pin,
        "pinned bank queue must visibly grow after the pin \
         (before {depth_before_pin}, during {depth_during_wedge})"
    );
    assert!(
        depth_during_wedge >= 4,
        "a frozen single-ported bank should pile up a deep queue, \
         saw max depth {depth_during_wedge}"
    );
}
