//! End-to-end robustness: fault injection → watchdog diagnosis →
//! sweep isolation → journal resume (DESIGN.md §11).
//!
//! These tests arm `smtsim_mem::FaultPlan` (a test-only surface — no
//! production path sets it) to wedge a simulation on purpose, then
//! check that the failure is *contained*: the watchdog converts the
//! livelock into a structured `SimError::NoForwardProgress`, sweep
//! neighbours of the wedged job stay byte-identical to a fault-free
//! run, and a journaled sweep interrupted mid-flight resumes to
//! byte-identical final output.

use smtsim_core::json::ToJson;
use smtsim_core::{
    run_sweep, run_sweep_journaled, SimConfig, SimError, Simulator, SweepJob, Workload,
};
use smtsim_mem::FaultPlan;
use smtsim_policy::PolicyKind;

/// A small healthy experiment (2 threads, 1 core).
fn healthy(seed: u64) -> SimConfig {
    let w = Workload::by_name("2W1").unwrap();
    SimConfig::for_workload(w, PolicyKind::Mflush)
        .with_cycles(30_000)
        .with_seed(seed)
        .with_watchdog(5_000)
}

/// The same experiment with every DRAM response swallowed from cycle
/// 2000 on: the machine livelocks once each thread blocks on a lost
/// line.
fn livelocked(seed: u64) -> SimConfig {
    let mut cfg = healthy(seed);
    cfg.mem.faults = FaultPlan::none().dropping_dram_from(2_000);
    cfg
}

#[test]
fn watchdog_converts_livelock_into_a_diagnosis() {
    let err = Simulator::build(&livelocked(7))
        .unwrap()
        .run()
        .expect_err("a machine with no DRAM responses cannot make progress");
    match err {
        SimError::NoForwardProgress {
            cycle,
            core,
            last_commit_cycle,
            diagnostic,
        } => {
            // The watchdog fires after its interval elapses without
            // progress, well before the cycle budget.
            assert!(cycle >= 5_000, "fired at {cycle}, before one interval");
            assert!(cycle < 30_000, "fired only at the cycle budget");
            assert!(last_commit_cycle < cycle);
            assert_eq!(core, 0, "the only core is the wedged one");
            // The diagnosis names the mechanism: requests in flight
            // that never retire, on the policy we configured.
            assert_eq!(diagnostic.policy, "MFLUSH");
            assert_eq!(diagnostic.watchdog_cycles, 5_000);
            assert!(
                diagnostic.inflight > 0,
                "swallowed DRAM responses must show up as leaked in-flight requests"
            );
            assert_eq!(diagnostic.cores.len(), 1);
            assert_eq!(diagnostic.cores[0].threads.len(), 2);
            for t in &diagnostic.cores[0].threads {
                assert!(t.committed > 0, "threads ran fine until the fault armed");
            }
        }
        other => panic!("expected NoForwardProgress, got {other}"),
    }
}

#[test]
fn disarmed_watchdog_lets_the_livelock_run_to_budget() {
    // Same wedged machine, watchdog off: the run "succeeds" by burning
    // the whole cycle budget — which is exactly why the watchdog
    // defaults on.
    let mut cfg = livelocked(7).with_cycles(12_000);
    cfg.watchdog_cycles = 0;
    let r = Simulator::build(&cfg).unwrap().run().unwrap();
    let healthy_r = Simulator::build(&healthy(7).with_cycles(12_000))
        .unwrap()
        .run()
        .unwrap();
    assert!(
        r.total_committed() < healthy_r.total_committed(),
        "the faulted run must have stalled long before the budget"
    );
}

#[test]
fn livelocked_job_fails_alone_in_a_sweep() {
    let jobs = vec![
        SweepJob::new("good-a", healthy(1)),
        SweepJob::new("wedged", livelocked(2)),
        SweepJob::new("good-b", healthy(3)),
    ];
    let out = run_sweep(&jobs, 2);
    assert_eq!(out.len(), 3);
    assert!(out[0].1.is_ok());
    assert!(
        matches!(out[1].1, Err(SimError::NoForwardProgress { .. })),
        "wedged job must carry its diagnosis, got {:?}",
        out[1].1.as_ref().err()
    );
    assert!(out[2].1.is_ok());

    // The healthy jobs' JSON is byte-identical to a fault-free sweep:
    // one livelocked neighbour perturbs nothing.
    let clean = run_sweep(
        &[
            SweepJob::new("good-a", healthy(1)),
            SweepJob::new("good-b", healthy(3)),
        ],
        2,
    );
    assert_eq!(
        out[0].1.as_ref().unwrap().to_json(),
        clean[0].1.as_ref().unwrap().to_json()
    );
    assert_eq!(
        out[2].1.as_ref().unwrap().to_json(),
        clean[1].1.as_ref().unwrap().to_json()
    );
}

#[test]
fn interrupted_journal_resumes_to_byte_identical_output() {
    let jobs = vec![
        SweepJob::new("good-a", healthy(1)),
        SweepJob::new("wedged", livelocked(2)),
        SweepJob::new("good-b", healthy(3)),
    ];
    let render = |out: &[(String, Result<smtsim_core::SimResult, SimError>)]| -> Vec<String> {
        out.iter()
            .map(|(label, r)| match r {
                Ok(v) => format!("{label} ok {}", v.to_json()),
                Err(e) => format!("{label} err {}", e.to_json()),
            })
            .collect()
    };

    let fresh = render(&run_sweep(&jobs, 1));

    // Run journaled, then simulate a kill -9 after the first two
    // completions: keep only the journal's first two lines plus a torn
    // fragment of the third.
    let path = std::env::temp_dir().join(format!(
        "smtsim-robustness-{}-resume.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let _ = run_sweep_journaled(&jobs, 1, Some(&path));
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "one journal line per job");
    let torn = format!(
        "{}\n{}\n{}",
        lines[0],
        lines[1],
        &lines[2][..lines[2].len() / 3]
    );
    std::fs::write(&path, torn).unwrap();

    let resumed = render(&run_sweep_journaled(&jobs, 2, Some(&path)));
    assert_eq!(
        resumed, fresh,
        "resumed sweep must be byte-identical to an uninterrupted one"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn error_json_of_a_real_livelock_roundtrips() {
    // The journal replays errors through `SimError::from_json`; feed it
    // a *real* watchdog diagnosis (not a hand-built sample) and demand
    // byte-identity.
    use smtsim_core::json::parse_json;
    let err = Simulator::build(&livelocked(11))
        .unwrap()
        .run()
        .expect_err("livelocked");
    let j = err.to_json();
    let back = SimError::from_json(&parse_json(&j).unwrap()).unwrap();
    assert_eq!(back, err);
    assert_eq!(back.to_json(), j);
}
