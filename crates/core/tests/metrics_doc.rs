//! METRICS.md drift gate.
//!
//! METRICS.md at the workspace root is *generated* from the
//! `MetricSpec` registrations (`smtsim_core::obs::metrics_markdown`).
//! This test byte-compares the checked-in file against the generator,
//! so drift in either direction fails:
//!
//! * a new registration without a regenerated doc (missing row);
//! * a doc row whose registration was renamed or removed (stale row);
//! * hand edits to the generated file.
//!
//! Regenerate after an intentional registry change with
//! `BLESS=1 cargo test -p smtsim-core --test metrics_doc`.
//! Lint rule D8 enforces the same agreement name-by-name from the
//! linter side (`smtsim-lint`), so CI catches drift even when this
//! test target is skipped.

use smtsim_core::obs::metrics_markdown;
use std::path::{Path, PathBuf};

fn metrics_md_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../METRICS.md")
}

#[test]
fn metrics_md_matches_the_registry() {
    let path = metrics_md_path();
    let want = metrics_markdown();
    if std::env::var("BLESS").is_ok() {
        std::fs::write(&path, &want).expect("write METRICS.md");
        return;
    }
    let have = std::fs::read_to_string(&path)
        .expect("METRICS.md missing; create it with BLESS=1 cargo test -p smtsim-core --test metrics_doc");
    assert_eq!(
        have, want,
        "METRICS.md drifted from the MetricSpec registrations; \
         regenerate with BLESS=1 cargo test -p smtsim-core --test metrics_doc"
    );
}

#[test]
fn generator_catches_synthetic_drift_both_ways() {
    let doc = metrics_markdown();
    // Removing any table row breaks the byte-compare (stale doc)…
    let without_last_row = {
        let mut lines: Vec<&str> = doc.lines().collect();
        lines.pop();
        lines.join("\n")
    };
    assert_ne!(doc, without_last_row);
    // …and so does an extra row (overpromising doc).
    let with_extra_row = format!("{doc}| `fake.metric` | gauge | x | core | \u{2014} | nope |\n");
    assert_ne!(doc, with_extra_row);
}

#[test]
fn every_documented_name_is_backticked_exactly_once_per_table() {
    let doc = metrics_markdown();
    for m in smtsim_core::obs::all_metrics() {
        let rows: Vec<&str> = doc
            .lines()
            .filter(|l| l.contains(&format!("`{}`", m.name)))
            .collect();
        assert_eq!(rows.len(), 1, "{} should have exactly one table row", m.name);
        assert!(rows[0].contains(m.unit), "{} row lists its unit", m.name);
    }
}
