#![forbid(unsafe_code)]
//! # smtsim-energy — the paper's energy model (Figs. 9, 10, 11)
//!
//! The FLUSH mechanism squashes instructions and refetches them later, so
//! every squashed instruction pays part of its pipeline energy twice. The
//! paper quantifies this with the **Energy Consumption Factor** (Fig. 10),
//! derived from Folegnani & González's per-resource energy breakdown
//! (Fig. 9): committing one instruction costs 1 energy unit, split across
//! the pipeline stages; an instruction squashed at stage *s* has already
//! spent the *accumulated* factor of *s*, and that amount is wasted.
//!
//! This crate provides the stage model ([`PipelineStage`]), the factor
//! table ([`ecf`]), and a per-thread/per-policy accounting ledger
//! ([`account::EnergyAccount`]) the core model feeds as it squashes and
//! commits instructions.
//!
//! ```
//! use smtsim_energy::{accumulated_factor, EnergyAccount, PipelineStage, SquashCause};
//!
//! let mut ledger = EnergyAccount::new();
//! ledger.commit_n(100);                                  // 100 eu useful
//! ledger.squash(SquashCause::Flush, PipelineStage::Queue); // 0.64 eu wasted
//! assert_eq!(accumulated_factor(PipelineStage::Queue), 0.64);
//! assert!((ledger.wasted_energy() - 0.64).abs() < 1e-12);
//! assert!((ledger.total_energy() - 100.64).abs() < 1e-12);
//! ```

pub mod account;
pub mod ecf;
pub mod report;

pub use account::{EnergyAccount, SquashCause};
pub use ecf::{accumulated_factor, local_factor, PipelineStage, ALL_STAGES};
