//! Energy accounting ledger.
//!
//! The core model reports every committed instruction and every squashed
//! instruction (with the deepest pipeline stage it completed and the
//! cause of the squash). The ledger then reproduces the paper's Fig. 11
//! "Wasted Energy": the extra energy the FLUSH mechanism spends
//! refetching instructions it threw away.

use crate::ecf::{accumulated_factor, PipelineStage, ALL_STAGES};

/// Why an instruction was squashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SquashCause {
    /// The fetch policy's FLUSH response action — this is what Fig. 11
    /// charges as *wasted* energy.
    Flush,
    /// Branch misprediction recovery (present under every policy,
    /// including ICOUNT; reported separately, not part of Fig. 11).
    BranchMispredict,
}

/// Per-thread (or aggregated) energy ledger, in units of
/// "energy to commit one instruction".
#[derive(Debug, Clone, Default)]
pub struct EnergyAccount {
    committed: u64,
    /// Squashed-by-flush counts per deepest-completed stage.
    flush_squashed: [u64; 8],
    /// Squashed-by-mispredict counts per deepest-completed stage.
    branch_squashed: [u64; 8],
}

impl EnergyAccount {
    /// Fresh ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reconstruct a ledger from serialized parts (the sweep journal's
    /// decoder).
    pub fn from_parts(committed: u64, flush_squashed: [u64; 8], branch_squashed: [u64; 8]) -> Self {
        EnergyAccount {
            committed,
            flush_squashed,
            branch_squashed,
        }
    }

    /// Record one committed instruction (1 energy unit of useful work).
    #[inline]
    pub fn commit(&mut self) {
        self.committed += 1;
    }

    /// Record `n` committed instructions.
    #[inline]
    pub fn commit_n(&mut self, n: u64) {
        self.committed += n;
    }

    /// Record a squashed instruction whose deepest *completed* stage was
    /// `stage`.
    #[inline]
    pub fn squash(&mut self, cause: SquashCause, stage: PipelineStage) {
        match cause {
            SquashCause::Flush => self.flush_squashed[stage.index()] += 1,
            SquashCause::BranchMispredict => self.branch_squashed[stage.index()] += 1,
        }
    }

    /// Committed instructions.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Instructions squashed by the FLUSH mechanism.
    pub fn flush_squashed_total(&self) -> u64 {
        self.flush_squashed.iter().sum()
    }

    /// Instructions squashed by branch mispredictions.
    pub fn branch_squashed_total(&self) -> u64 {
        self.branch_squashed.iter().sum()
    }

    /// Per-stage flush-squash counts (pipeline order).
    pub fn flush_squashed_by_stage(&self) -> [u64; 8] {
        self.flush_squashed
    }

    /// Per-stage mispredict-squash counts (pipeline order).
    pub fn branch_squashed_by_stage(&self) -> [u64; 8] {
        self.branch_squashed
    }

    /// Fig. 11's *Wasted Energy*: Σ over flush-squashed instructions of
    /// the accumulated ECF of the deepest stage each one completed.
    pub fn wasted_energy(&self) -> f64 {
        ALL_STAGES
            .iter()
            .map(|&s| self.flush_squashed[s.index()] as f64 * accumulated_factor(s))
            .sum()
    }

    /// Energy wasted by wrong-path work after branch mispredictions
    /// (same formula, different cause; not part of Fig. 11 but reported
    /// for completeness).
    pub fn mispredict_energy(&self) -> f64 {
        ALL_STAGES
            .iter()
            .map(|&s| self.branch_squashed[s.index()] as f64 * accumulated_factor(s))
            .sum()
    }

    /// Useful energy: one unit per committed instruction.
    pub fn useful_energy(&self) -> f64 {
        self.committed as f64
    }

    /// Total energy = useful + flush waste + mispredict waste.
    pub fn total_energy(&self) -> f64 {
        self.useful_energy() + self.wasted_energy() + self.mispredict_energy()
    }

    /// Wasted-energy overhead relative to useful work (0 when nothing
    /// committed).
    pub fn waste_ratio(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.wasted_energy() / self.useful_energy()
        }
    }

    /// Merge another ledger into this one.
    pub fn merge(&mut self, other: &EnergyAccount) {
        self.committed += other.committed;
        for i in 0..8 {
            self.flush_squashed[i] += other.flush_squashed[i];
            self.branch_squashed[i] += other.branch_squashed[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ledger_is_zero() {
        let a = EnergyAccount::new();
        assert_eq!(a.committed(), 0);
        assert_eq!(a.wasted_energy(), 0.0);
        assert_eq!(a.total_energy(), 0.0);
        assert_eq!(a.waste_ratio(), 0.0);
    }

    #[test]
    fn commit_costs_one_unit() {
        let mut a = EnergyAccount::new();
        a.commit_n(100);
        assert_eq!(a.useful_energy(), 100.0);
        assert_eq!(a.total_energy(), 100.0);
    }

    #[test]
    fn flush_waste_uses_accumulated_factor() {
        let mut a = EnergyAccount::new();
        // Squashed after Queue: accumulated 0.64.
        a.squash(SquashCause::Flush, PipelineStage::Queue);
        assert!((a.wasted_energy() - 0.64).abs() < 1e-12);
        // Squashed after Fetch: accumulated 0.13.
        a.squash(SquashCause::Flush, PipelineStage::Fetch);
        assert!((a.wasted_energy() - 0.77).abs() < 1e-12);
    }

    #[test]
    fn deeper_squashes_waste_more() {
        let mut early = EnergyAccount::new();
        let mut late = EnergyAccount::new();
        early.squash(SquashCause::Flush, PipelineStage::Decode);
        late.squash(SquashCause::Flush, PipelineStage::Execute);
        assert!(late.wasted_energy() > early.wasted_energy());
    }

    #[test]
    fn mispredict_energy_is_separate() {
        let mut a = EnergyAccount::new();
        a.squash(SquashCause::BranchMispredict, PipelineStage::Execute);
        assert_eq!(a.wasted_energy(), 0.0);
        assert!((a.mispredict_energy() - 0.82).abs() < 1e-12);
        assert!((a.total_energy() - 0.82).abs() < 1e-12);
    }

    #[test]
    fn waste_ratio_relative_to_useful() {
        let mut a = EnergyAccount::new();
        a.commit_n(10);
        a.squash(SquashCause::Flush, PipelineStage::Commit); // 1.0 wasted
        assert!((a.waste_ratio() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = EnergyAccount::new();
        let mut b = EnergyAccount::new();
        a.commit_n(5);
        a.squash(SquashCause::Flush, PipelineStage::Fetch);
        b.commit_n(7);
        b.squash(SquashCause::Flush, PipelineStage::Fetch);
        b.squash(SquashCause::BranchMispredict, PipelineStage::Queue);
        a.merge(&b);
        assert_eq!(a.committed(), 12);
        assert_eq!(a.flush_squashed_total(), 2);
        assert_eq!(a.branch_squashed_total(), 1);
        assert!((a.wasted_energy() - 0.26).abs() < 1e-12);
    }

    #[test]
    fn by_stage_view_matches_totals() {
        let mut a = EnergyAccount::new();
        a.squash(SquashCause::Flush, PipelineStage::Rename);
        a.squash(SquashCause::Flush, PipelineStage::Rename);
        a.squash(SquashCause::Flush, PipelineStage::Commit);
        let by = a.flush_squashed_by_stage();
        assert_eq!(by[PipelineStage::Rename.index()], 2);
        assert_eq!(by[PipelineStage::Commit.index()], 1);
        assert_eq!(a.flush_squashed_total(), 3);
    }
}
