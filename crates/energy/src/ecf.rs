//! The Energy Consumption Factor table (paper Fig. 10) and the
//! per-resource energy distribution it is derived from (paper Fig. 9).


/// The eight accounted pipeline stages of the paper's 11-stage core
/// (Fig. 9b/Fig. 10 granularity; the remaining physical stages are
/// sub-stages of these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum PipelineStage {
    Fetch = 0,
    Decode = 1,
    Rename = 2,
    /// Issue-queue residency (wakeup/select) — the single most expensive
    /// stage in Fig. 10, which is why queue-clogging threads are so
    /// costly.
    Queue = 3,
    RegRead = 4,
    Execute = 5,
    RegWrite = 6,
    Commit = 7,
}

/// All stages in pipeline order.
pub const ALL_STAGES: [PipelineStage; 8] = [
    PipelineStage::Fetch,
    PipelineStage::Decode,
    PipelineStage::Rename,
    PipelineStage::Queue,
    PipelineStage::RegRead,
    PipelineStage::Execute,
    PipelineStage::RegWrite,
    PipelineStage::Commit,
];

/// Local Energy Consumption Factor of each stage (paper Fig. 10, "Local"
/// column). Sums to 1.0: the energy to commit one instruction.
pub const LOCAL_ECF: [f64; 8] = [0.13, 0.03, 0.22, 0.26, 0.05, 0.13, 0.05, 0.13];

/// Accumulated ECF (paper Fig. 10, "Accumulated" column): energy already
/// spent by an instruction that has *completed* the given stage.
pub const ACCUMULATED_ECF: [f64; 8] = [0.13, 0.16, 0.38, 0.64, 0.69, 0.82, 0.87, 1.00];

impl PipelineStage {
    /// Stage index in pipeline order.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Human-readable name matching the paper's table.
    pub fn name(self) -> &'static str {
        match self {
            PipelineStage::Fetch => "Fetch",
            PipelineStage::Decode => "Decode",
            PipelineStage::Rename => "Rename",
            PipelineStage::Queue => "Queue",
            PipelineStage::RegRead => "Reg. Read",
            PipelineStage::Execute => "Execute",
            PipelineStage::RegWrite => "Reg. Write",
            PipelineStage::Commit => "Commit",
        }
    }

    /// Next stage, or `None` after commit.
    pub fn next(self) -> Option<PipelineStage> {
        let i = self.index();
        ALL_STAGES.get(i + 1).copied()
    }
}

/// Local ECF of `stage`.
#[inline]
pub fn local_factor(stage: PipelineStage) -> f64 {
    LOCAL_ECF[stage.index()]
}

/// Accumulated ECF of an instruction that completed `stage` — the energy
/// wasted if it is squashed right after.
#[inline]
pub fn accumulated_factor(stage: PipelineStage) -> f64 {
    ACCUMULATED_ECF[stage.index()]
}

/// One row of the paper's Fig. 9(a): share of core energy per hardware
/// resource, with the pipeline stage(s) that exercise it (Fig. 9(b)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceEnergy {
    pub resource: &'static str,
    /// Percentage of core energy (sums to 100 across the table).
    pub percent: f64,
    /// Stage the resource is charged to in the ECF.
    pub stage: PipelineStage,
}

/// Fig. 9 energy distribution. The paper plots these as a chart citing
/// Folegnani & González (ISCA'01); the values below are chosen so the
/// per-stage sums reproduce Fig. 10's local factors exactly.
pub const RESOURCE_ENERGY: [ResourceEnergy; 10] = [
    ResourceEnergy { resource: "I-cache", percent: 8.0, stage: PipelineStage::Fetch },
    ResourceEnergy { resource: "Branch predictor", percent: 5.0, stage: PipelineStage::Fetch },
    ResourceEnergy { resource: "Decode logic", percent: 3.0, stage: PipelineStage::Decode },
    ResourceEnergy { resource: "Rename table", percent: 22.0, stage: PipelineStage::Rename },
    ResourceEnergy { resource: "Issue queue (wakeup+select)", percent: 26.0, stage: PipelineStage::Queue },
    ResourceEnergy { resource: "Register file (read)", percent: 5.0, stage: PipelineStage::RegRead },
    ResourceEnergy { resource: "Functional units", percent: 7.0, stage: PipelineStage::Execute },
    ResourceEnergy { resource: "D-cache", percent: 6.0, stage: PipelineStage::Execute },
    ResourceEnergy { resource: "Register file (write)", percent: 5.0, stage: PipelineStage::RegWrite },
    ResourceEnergy { resource: "ROB / commit", percent: 13.0, stage: PipelineStage::Commit },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_factors_match_paper_table() {
        assert_eq!(local_factor(PipelineStage::Fetch), 0.13);
        assert_eq!(local_factor(PipelineStage::Decode), 0.03);
        assert_eq!(local_factor(PipelineStage::Rename), 0.22);
        assert_eq!(local_factor(PipelineStage::Queue), 0.26);
        assert_eq!(local_factor(PipelineStage::RegRead), 0.05);
        assert_eq!(local_factor(PipelineStage::Execute), 0.13);
        assert_eq!(local_factor(PipelineStage::RegWrite), 0.05);
        assert_eq!(local_factor(PipelineStage::Commit), 0.13);
    }

    #[test]
    fn accumulated_is_prefix_sum_of_local() {
        let mut acc = 0.0;
        for s in ALL_STAGES {
            acc += local_factor(s);
            assert!(
                (accumulated_factor(s) - acc).abs() < 1e-9,
                "{}: accumulated {} vs prefix sum {acc}",
                s.name(),
                accumulated_factor(s)
            );
        }
    }

    #[test]
    fn commit_costs_exactly_one_unit() {
        assert!((accumulated_factor(PipelineStage::Commit) - 1.0).abs() < 1e-12);
        let total: f64 = LOCAL_ECF.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stages_are_ordered_and_linked() {
        let mut s = PipelineStage::Fetch;
        let mut count = 1;
        while let Some(n) = s.next() {
            assert!(n > s);
            s = n;
            count += 1;
        }
        assert_eq!(count, 8);
        assert_eq!(s, PipelineStage::Commit);
    }

    #[test]
    fn resource_table_sums_to_100_percent() {
        let total: f64 = RESOURCE_ENERGY.iter().map(|r| r.percent).sum();
        assert!((total - 100.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn resource_table_reproduces_local_factors() {
        for stage in ALL_STAGES {
            let pct: f64 = RESOURCE_ENERGY
                .iter()
                .filter(|r| r.stage == stage)
                .map(|r| r.percent)
                .sum();
            assert!(
                (pct / 100.0 - local_factor(stage)).abs() < 1e-9,
                "{}: resources {pct}% vs local ECF {}",
                stage.name(),
                local_factor(stage)
            );
        }
    }
}
