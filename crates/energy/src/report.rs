//! Text renderings of the paper's energy tables (Figs. 9 and 10) and of
//! measured ledgers (Fig. 11 rows).

use crate::account::EnergyAccount;
use crate::ecf::{accumulated_factor, local_factor, ALL_STAGES, RESOURCE_ENERGY};
use std::fmt::Write;

/// Render Fig. 10 ("Energy Consumption Factor") as a text table.
pub fn ecf_table() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Energy Consumption Factor");
    let _ = writeln!(s, "{:<12} {:>7} {:>12}", "Stage", "Local", "Accumulated");
    for st in ALL_STAGES {
        let _ = writeln!(
            s,
            "{:<12} {:>7.2} {:>12.2}",
            st.name(),
            local_factor(st),
            accumulated_factor(st)
        );
    }
    s
}

/// Render Fig. 9(a) ("energy distribution per resource") as a text table.
pub fn resource_table() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Energy distribution per hardware resource");
    let _ = writeln!(s, "{:<30} {:>6}  Charged stage", "Resource", "%");
    for r in RESOURCE_ENERGY {
        let _ = writeln!(s, "{:<30} {:>6.1}  {}", r.resource, r.percent, r.stage.name());
    }
    s
}

/// Render one Fig. 11 row: the wasted energy of a policy on a workload.
pub fn wasted_energy_row(label: &str, account: &EnergyAccount) -> String {
    format!(
        "{:<16} committed={:>10} flushed={:>9} wasted={:>12.1} eu  waste/commit={:.4}",
        label,
        account.committed(),
        account.flush_squashed_total(),
        account.wasted_energy(),
        account.waste_ratio(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::SquashCause;
    use crate::ecf::PipelineStage;

    #[test]
    fn ecf_table_contains_all_stages_and_values() {
        let t = ecf_table();
        for st in ALL_STAGES {
            assert!(t.contains(st.name()), "missing {}", st.name());
        }
        assert!(t.contains("0.26"), "queue local factor missing");
        assert!(t.contains("1.00"), "commit accumulated factor missing");
    }

    #[test]
    fn resource_table_lists_resources() {
        let t = resource_table();
        assert!(t.contains("Issue queue"));
        assert!(t.contains("Rename table"));
    }

    #[test]
    fn wasted_row_reports_numbers() {
        let mut a = EnergyAccount::new();
        a.commit_n(100);
        a.squash(SquashCause::Flush, PipelineStage::Commit);
        let row = wasted_energy_row("FLUSH-S30", &a);
        assert!(row.contains("FLUSH-S30"));
        assert!(row.contains("committed="));
        assert!(row.contains("0.0100"));
    }
}
