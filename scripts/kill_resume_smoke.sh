#!/usr/bin/env bash
# Kill-resume smoke test (DESIGN.md §11).
#
# A journaled sweep killed mid-flight (`kill -9`, no cleanup) must
# resume to final output byte-identical to an uninterrupted run: the
# journal replays recorded jobs, the rest run fresh, and because every
# raw field in the JSON output is an integer/bool/string, replayed and
# fresh results cannot diverge in formatting.
#
# Usage: scripts/kill_resume_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release/smtsim
if [[ ! -x "$BIN" ]]; then
    cargo build --release --offline -q -p mflush --bin smtsim
fi

WORKLOAD=4W1
CYCLES=40000
TMP=$(mktemp -d "${TMPDIR:-/tmp}/smtsim-kill-resume.XXXXXX")
trap 'rm -rf "$TMP"' EXIT

# Golden: one uninterrupted, journal-free sweep.
"$BIN" sweep --workload "$WORKLOAD" --cycles "$CYCLES" --json > "$TMP/golden.json"

# Victim: the same sweep with a journal, killed without cleanup as soon
# as the journal records its first completed job.
"$BIN" sweep --workload "$WORKLOAD" --cycles "$CYCLES" \
    --journal "$TMP/sweep.jsonl" --json > "$TMP/victim.json" &
VICTIM=$!
for _ in $(seq 1 200); do
    [[ -s "$TMP/sweep.jsonl" ]] && break
    sleep 0.05
done
kill -9 "$VICTIM" 2>/dev/null || true
wait "$VICTIM" 2>/dev/null || true

LINES=$(wc -l < "$TMP/sweep.jsonl" 2>/dev/null || echo 0)
echo "journal held $LINES job line(s) at kill time"

# Resume: recorded jobs replay from the journal; the rest run fresh.
"$BIN" sweep --workload "$WORKLOAD" --cycles "$CYCLES" \
    --journal "$TMP/sweep.jsonl" --json > "$TMP/resumed.json"

cmp "$TMP/golden.json" "$TMP/resumed.json"
echo "kill-resume smoke: resumed sweep output is byte-identical"
