#!/usr/bin/env bash
# Tier-1 verification: build, test, lint — fully offline.
#
# The workspace has zero external dependencies (see DESIGN.md §9), so
# every step runs with `--offline`; a network-less container must pass
# this script bit-for-bit the same as a connected laptop.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== test (workspace, offline) =="
cargo test -q --offline --workspace

echo "== determinism lint (smtsim-lint, call-graph rules) =="
# Gate 3: the in-tree determinism linter (DESIGN.md §10/§14), including
# the call-graph rules D10-D12. Exits nonzero on any unwaived finding;
# the baseline file grandfathers nothing today (it is kept empty on
# purpose). The runtime budget line is informational (host time never
# gates) but keeps the whole-workspace graph pass honest: if it creeps
# past the budget, precompute or prune before it gets skipped-when-slow.
LINT_BUDGET_MS=5000
lint_start=$(date +%s%N)
cargo run --release --offline -q -p smtsim-analysis --bin smtsim-lint -- \
    --baseline scripts/lint-baseline.txt
lint_ms=$(( ($(date +%s%N) - lint_start) / 1000000 ))
echo "lint runtime: ${lint_ms}ms (budget ${LINT_BUDGET_MS}ms, informational)"
if [ "$lint_ms" -gt "$LINT_BUDGET_MS" ]; then
    echo "warning: lint runtime exceeded its budget" >&2
fi
# The linter's own gates: fixture golden + seeded mutations, and the
# generated LINTS.md must match the Rule metadata (BLESS=1 regenerates).
cargo test -q --offline -p smtsim-analysis --test lint_golden
cargo test -q --offline -p smtsim-analysis --test lints_doc

echo "== robustness (fault injection, watchdog, kill-resume) =="
# Gate 4: the failure-model suite (DESIGN.md §11). The targets also run
# under the workspace test gate; naming them here keeps the robustness
# bar visible and adds the cross-process kill -9 resume check, which no
# in-process test can cover.
cargo test -q --offline -p smtsim-core --test robustness
cargo test -q --offline -p smtsim-trace --test corruption
cargo test -q --offline -p smtsim-mem --lib fault
scripts/kill_resume_smoke.sh

echo "== observability (trace determinism, METRICS.md drift) =="
# Gate 5: the observability suite (DESIGN.md §12). Also part of the
# workspace test gate; named here because the METRICS.md drift test is
# the doc-generation contract (BLESS=1 regenerates) and the trace
# byte-identity tests are the feature's whole determinism claim.
cargo test -q --offline -p smtsim-core --test obs_trace
cargo test -q --offline -p smtsim-core --test metrics_doc

echo "== fidelity equivalence (detailed == pre-refactor bytes) =="
# Gate 6: the pluggable-fidelity refactor's invariant (DESIGN.md §13).
# Also part of the workspace test gate; named here because byte-drift
# in the default fidelity silently invalidates every golden figure.
cargo test -q --offline -p smtsim-core --test fidelity

echo "== serve (fault tolerance, cache replay, kill -9 restart) =="
# Gate 7: the serving layer's robustness suite (DESIGN.md §15). Also
# part of the workspace test gate; named here because the cross-process
# smoke — kill -9 a real server, restart on the same journal, demand a
# byte-identical replayed answer — only exists as a script.
cargo test -q --offline -p smtsim-serve --test robustness
cargo test -q --offline -p smtsim-serve --test corruption
scripts/serve_smoke.sh

echo "== bench baseline delta (informational, warns past +/-25%) =="
# Not a gate: host time is machine-dependent (PERFORMANCE.md section 1).
# Prints the drift of the tracked configurations against
# BENCH_baseline.json; past +/-25% it *warns* — on the machine that
# recorded the baseline that usually means an accidental model-cost
# regression — but it never fails the build.
warn_drift() { # reads one "--baseline" output line on stdin
    local line pct
    line=$(cat)
    echo "$line"
    pct=$(printf '%s' "$line" | sed -n 's/.*(\([+-][0-9.]*\)%.*/\1/p')
    if [ -n "$pct" ] && awk "BEGIN{exit !($pct > 25 || $pct < -25)}"; then
        echo "warning: host-time drift ${pct}% exceeds 25% — model-cost regression, or a different machine (see PERFORMANCE.md section 1)" >&2
    fi
}
if [ -f BENCH_baseline.json ]; then
    BP=target/release/bench_profile
    "$BP" --workload 4W3 --policy mflush --cycles 300000 \
          --fidelity mem=fast,core=approx --plain --json \
          --baseline BENCH_baseline.json | tail -1 | warn_drift
    "$BP" --workload 4W3 --policy mflush --cycles 300000 \
          --plain --json --baseline BENCH_baseline.json | tail -1 | warn_drift
else
    echo "BENCH_baseline.json missing; run scripts/bench_baseline.sh" >&2
fi
# Cold-vs-cache-hit host time for the serving layer; the recorded
# snapshot lives in BENCH_serve.json (regenerate: bench_serve > it).
target/release/bench_serve --cycles 150000

echo "== cycle-loop skip-ahead record (deterministic gate) =="
# Gate 8: the stall skip-ahead record (DESIGN.md section 16). The
# deterministic fields of BENCH_cycleloop.json (committed, IPC,
# skipped cycles) re-measure byte-exactly on every machine; drift
# means the skip horizon changed behaviour and FAILS the build. The
# generated table in PERFORMANCE.md section 4 must match the committed
# record. Host seconds in both are informational only. BLESS=1
# regenerates the JSON and the doc table together.
BC=target/release/bench_cycleloop
cycleloop_table_in_doc() {
    awk '/BEGIN bench_cycleloop table/{f=1;next}/END bench_cycleloop table/{f=0}f' \
        PERFORMANCE.md
}
if [ "${BLESS:-0}" = "1" ]; then
    "$BC" > BENCH_cycleloop.json
    "$BC" --table BENCH_cycleloop.json > target/cycleloop_table.md
    awk '
        /BEGIN bench_cycleloop table/ {
            print
            while ((getline line < "target/cycleloop_table.md") > 0) print line
            skip = 1; next
        }
        /END bench_cycleloop table/ { skip = 0 }
        !skip { print }
    ' PERFORMANCE.md > PERFORMANCE.md.tmp && mv PERFORMANCE.md.tmp PERFORMANCE.md
    echo "blessed BENCH_cycleloop.json and the PERFORMANCE.md table"
fi
"$BC" --check BENCH_cycleloop.json
if ! diff <("$BC" --table BENCH_cycleloop.json) <(cycleloop_table_in_doc); then
    echo "PERFORMANCE.md table drifted from BENCH_cycleloop.json (BLESS=1 scripts/ci.sh regenerates)" >&2
    exit 1
fi
echo "PERFORMANCE.md table matches BENCH_cycleloop.json"

echo "== rustdoc (-D warnings) =="
# Gate 6: the API reference must build warning-free (missing docs on
# the core/obs surfaces are warnings via #![warn(missing_docs)], and
# broken intra-doc links are rejected here).
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace -q

echo "== clippy (-D warnings) =="
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --offline --workspace --all-targets -- -D warnings
else
    # Minimal toolchains may lack the clippy component; the build and
    # test gates above still hold.
    echo "clippy not installed; skipping lint gate" >&2
fi

echo "== ci green =="
