#!/usr/bin/env bash
# Serve smoke test (DESIGN.md §15).
#
# A served answer must be byte-identical to `smtsim run --json` for
# the same config — including when the server is killed with `kill -9`
# (no drain, no fsync) and a fresh server replays the answer from the
# surviving cache journal. This is the cross-process half of the
# robustness suite: no in-process test can kill the real binary.
#
# Usage: scripts/serve_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release/smtsim
if [[ ! -x "$BIN" ]]; then
    cargo build --release --offline -q -p mflush --bin smtsim
fi

TMP=$(mktemp -d "${TMPDIR:-/tmp}/smtsim-serve-smoke.XXXXXX")
S1=""
S2=""
cleanup() {
    [[ -n "$S1" ]] && kill -9 "$S1" 2>/dev/null || true
    [[ -n "$S2" ]] && kill -9 "$S2" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

BODY='{"workload":"2W2","policy":"mflush","cycles":30000}'
SLOW_BODY='{"workload":"2W2","policy":"icount","cycles":2000000}'

# The address a `serve --addr 127.0.0.1:0` instance actually bound.
bound_addr() {
    local log=$1 addr=""
    for _ in $(seq 1 200); do
        addr=$(grep -m1 -oE 'listening on [0-9.:]+' "$log" | awk '{print $3}' || true)
        [[ -n "$addr" ]] && break
        sleep 0.05
    done
    [[ -n "$addr" ]] || { echo "server never announced its address" >&2; exit 1; }
    echo "$addr"
}

# Golden: what the CLI answers for the same config, no server involved.
"$BIN" run --workload 2W2 --policy mflush --cycles 30000 --json > "$TMP/golden.json"

# Server 1: answer once (populating the cache journal), then die hard
# mid-way through a second, long-running job.
"$BIN" serve --addr 127.0.0.1:0 --cache "$TMP/cache" > "$TMP/server1.log" 2>&1 &
S1=$!
disown "$S1"
ADDR=$(bound_addr "$TMP/server1.log")

"$BIN" request --addr "$ADDR" --body "$BODY" > "$TMP/first.json"
cmp "$TMP/golden.json" "$TMP/first.json"
echo "serve smoke: fresh served answer matches smtsim run --json"

"$BIN" request --addr "$ADDR" --body "$SLOW_BODY" --timeout 60000 \
    > /dev/null 2>&1 &
REQ=$!
sleep 0.3
kill -9 "$S1" 2>/dev/null || true
wait "$S1" 2>/dev/null || true
S1=""
wait "$REQ" 2>/dev/null || true

# Server 2, same journal: the first config must replay byte-identically
# without re-simulating anything the journal already holds.
"$BIN" serve --addr 127.0.0.1:0 --cache "$TMP/cache" > "$TMP/server2.log" 2>&1 &
S2=$!
disown "$S2"
ADDR2=$(bound_addr "$TMP/server2.log")

"$BIN" request --addr "$ADDR2" --body "$BODY" > "$TMP/replayed.json"
cmp "$TMP/golden.json" "$TMP/replayed.json"
echo "serve smoke: cache replay after kill -9 is byte-identical"
