#!/usr/bin/env bash
# Regenerate BENCH_baseline.json: host-time baselines for the fidelity
# configurations CI tracks (informational — host times are
# machine-dependent, so ci.sh prints deltas against these entries but
# never gates on them).
#
# Entries use bench_profile --plain: the observability layer is off so
# the record isolates model cost, which is what the detailed-vs-reduced
# fidelity comparison (DESIGN.md §13) is about.
#
# Usage: scripts/bench_baseline.sh   (writes BENCH_baseline.json)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline -q -p smtsim-bench
BP=target/release/bench_profile

best_of_3() { # workload fidelity cycles -> one JSON record on stdout
    local best="" bs="" line s
    for _ in 1 2 3; do
        line=$("$BP" --workload "$1" --policy mflush --cycles "$3" \
                     --fidelity "$2" --plain --json)
        s=$(printf '%s' "$line" | sed 's/.*"host_seconds": \([0-9.]*\).*/\1/')
        if [ -z "$best" ] || awk "BEGIN{exit !($s < $bs)}"; then
            best="$line" bs="$s"
        fi
    done
    printf '%s' "$best"
}

{
    echo '{'
    echo '  "note": "Host-time baselines from bench_profile --plain --json (best of 3). Machine-dependent: ci.sh prints the delta against these, it never gates on them. Regenerate with scripts/bench_baseline.sh.",'
    echo '  "entries": ['
    first=1
    for spec in "4W3 mem=detailed,core=detailed 300000" \
                "4W3 mem=fast,core=approx 300000" \
                "6W2 mem=detailed,core=detailed 1000000" \
                "6W2 mem=fast,core=approx 1000000"; do
        # shellcheck disable=SC2086
        set -- $spec
        [ "$first" -eq 0 ] && echo ','
        first=0
        printf '    %s' "$(best_of_3 "$1" "$2" "$3")"
    done
    echo ''
    echo '  ]'
    echo '}'
} > BENCH_baseline.json
echo "wrote BENCH_baseline.json:"
cat BENCH_baseline.json
