#![forbid(unsafe_code)]
//! # mflush — facade crate for the MFLUSH (ICPP 2008) reproduction
//!
//! Re-exports the whole simulator stack under one roof so that examples,
//! integration tests and downstream users need a single dependency.
//!
//! * [`trace`] — synthetic SPEC2000-like instruction traces
//! * [`mem`] — caches, shared banked L2, bus, DRAM
//! * [`cpu`] — the SMT out-of-order core model
//! * [`policy`] — ICOUNT / FLUSH / STALL / MFLUSH fetch policies
//! * [`energy`] — the Energy-Consumption-Factor model
//! * [`obs`] — trace events, event rings, metric registration
//! * [`sim`] — CMP+SMT simulator driver, workloads, experiment runner
//!
//! ## Quickstart
//!
//! ```
//! use mflush::prelude::*;
//!
//! // 1-core, 2-context SMT running the paper's 2W1 workload (vpr+vortex)
//! // under the MFLUSH fetch policy for 20k cycles. `build` rejects
//! // invalid configurations and `run` reports livelocks, so both
//! // return `Result`.
//! let workload = Workload::by_name("2W1").unwrap();
//! let cfg = SimConfig::for_workload(&workload, PolicyKind::Mflush);
//! let result = Simulator::build(&cfg).unwrap().run().unwrap();
//! assert!(result.total_committed() > 0);
//! ```

pub use smtsim_cpu as cpu;
pub use smtsim_energy as energy;
pub use smtsim_mem as mem;
pub use smtsim_obs as obs;
pub use smtsim_policy as policy;
pub use smtsim_core as sim;
pub use smtsim_trace as trace;

/// Most-used items in one import.
pub mod prelude {
    pub use smtsim_core::config::SimConfig;
    pub use smtsim_core::sim::Simulator;
    pub use smtsim_core::topology::{Fidelity, Topology};
    pub use smtsim_core::workloads::Workload;
    pub use smtsim_policy::PolicyKind;
    pub use smtsim_trace::spec;
}
