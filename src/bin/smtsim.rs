//! `smtsim` — command-line front-end to the CMP+SMT simulator.
//!
//! ```text
//! smtsim run --workload 8W3 --policy mflush --cycles 200000
//! smtsim run --workload 8W3 --fidelity mem=fast,core=approx --json
//! smtsim run --benchmarks mcf,gzip,swim,crafty --policy flush-s50 --json
//! smtsim run --workload 4W3 --policy flush-s30 --trace-events trace.jsonl --metrics-interval 5000
//! smtsim run --workload 4W3 --trace-events trace.json --trace-format chrome
//! smtsim sweep --workload 8W3 --cycles 100000 --csv
//! smtsim sweep --workload 8W3 --cycles 100000 --json --journal sweep.jsonl
//! smtsim serve --addr 127.0.0.1:8080 --cache /tmp/smtsim-cache
//! smtsim request --addr 127.0.0.1:8080 --body '{"workload":"2W2","policy":"mflush"}'
//! smtsim calibrate --cycles 60000 --json
//! smtsim workloads
//! smtsim policies
//! ```
//!
//! Exit codes: `0` success, `1` a simulation or request failed
//! (invalid configuration caught at build time, watchdog-detected
//! livelock, a panicked sweep job, or a non-200 server answer), `2`
//! usage errors — including unknown workload/benchmark/policy names,
//! which come with a "did you mean" suggestion.
//!
//! This binary lives in the root `mflush` package (not a simulator
//! crate) because `serve`/`request` pull in `smtsim-serve`, and lint
//! rule D13 keeps `std::net` out of the simulator crates.

use smtsim_core::calibration::{calibrate, calibration_json, calibration_table};
use smtsim_core::json::{write_escaped, JsonObject};
use smtsim_core::report::{histogram_table, results_csv, throughput_table};
use smtsim_core::suggest::did_you_mean;
use smtsim_core::workloads::{ALL_WORKLOADS, FIG5B_WORKLOAD};
use smtsim_core::{run_sweep_journaled, Fidelity, SimConfig, Simulator, SweepJob, ToJson, Workload};
use smtsim_policy::PolicyKind;
use smtsim_trace::spec;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         smtsim run --workload <xWy> [--policy <p>] [--cycles N] [--seed N] [--json]\n             \
         [--fidelity mem=<detailed|fast>,core=<detailed|approx>]\n             \
         [--trace-events FILE] [--metrics-interval N] [--trace-format jsonl|chrome]\n  \
         smtsim run --benchmarks a,b,c,d [--policy <p>] [--cycles N] [--json]\n  \
         smtsim sweep --workload <xWy> [--cycles N] [--fidelity ...] [--journal FILE] [--csv | --json]\n  \
         smtsim serve [--addr HOST:PORT] [--cache DIR] [--max-queue N] [--workers N]\n  \
         smtsim request --body JSON [--addr HOST:PORT] [--timeout MS]\n  \
         smtsim calibrate [--cycles N] [--json]\n  \
         smtsim workloads | policies\n\n\
         policies: icount, rr, brcount, l1dmisscount, adts, dcra,\n           \
         stall-sNN, stall-ns, flush-sNN, flush-ns, flush-adapt, mflush"
    );
    std::process::exit(2);
}

// ----------------------------------------------------------------
// "did you mean" support for unknown names
// ----------------------------------------------------------------
// The edit-distance machinery lives in `smtsim_core::suggest` (shared
// with `SimConfig::validate`'s unknown-benchmark hints); the policy
// name table and parser live on `PolicyKind` (shared with the serve
// layer's request validation).

/// Report an unknown name with a typo suggestion and exit 2.
fn unknown_name(kind: &str, input: &str, candidates: &[&str], hint: &str) -> ! {
    match did_you_mean(input, candidates) {
        Some(s) => eprintln!("unknown {kind} '{input}' (did you mean '{s}'?)"),
        None => eprintln!("unknown {kind} '{input}' ({hint})"),
    }
    std::process::exit(2);
}

fn workload_names() -> Vec<&'static str> {
    ALL_WORKLOADS
        .iter()
        .chain([&FIG5B_WORKLOAD])
        .map(|w| w.name)
        .collect()
}

fn benchmark_names() -> Vec<&'static str> {
    spec::ALL_BENCHMARKS.iter().map(|b| b.name).collect()
}

struct Args {
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(args: &[String]) -> Self {
        let mut flags = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = if it
                    .peek()
                    .map(|v| !v.starts_with("--"))
                    .unwrap_or(false)
                {
                    it.next().unwrap().clone()
                } else {
                    String::from("true")
                };
                flags.push((name.to_string(), value));
            } else {
                eprintln!("unexpected argument {a}");
                usage();
            }
        }
        Args { flags }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn get_u64(&self, name: &str, default: u64) -> u64 {
        self.get(name)
            .map(|v| v.parse().unwrap_or_else(|_| {
                eprintln!("bad value for --{name}: {v}");
                usage();
            }))
            .unwrap_or(default)
    }

    fn has(&self, name: &str) -> bool {
        self.get(name).is_some()
    }
}

/// Parse `--fidelity mem=fast,core=approx` (absent → detailed).
/// Unknown components or fidelity names are usage errors: exit 2.
fn parse_fidelity_arg(args: &Args) -> Fidelity {
    match args.get("fidelity") {
        None => Fidelity::detailed(),
        Some(spec) => Fidelity::parse(spec).unwrap_or_else(|e| {
            eprintln!("bad value for --fidelity: {e}");
            std::process::exit(2);
        }),
    }
}

fn build_config(args: &Args, policy: PolicyKind) -> SimConfig {
    let fidelity = parse_fidelity_arg(args);
    if let Some(wl) = args.get("workload") {
        let w = Workload::by_name(wl).unwrap_or_else(|| {
            unknown_name("workload", wl, &workload_names(), "try `smtsim workloads`");
        });
        SimConfig::for_workload(w, policy).with_fidelity(fidelity)
    } else if let Some(list) = args.get("benchmarks") {
        let names: Vec<&str> = list.split(',').collect();
        if !names.len().is_multiple_of(2) {
            eprintln!("need an even number of benchmarks (2 per core)");
            std::process::exit(2);
        }
        for n in &names {
            if spec::benchmark_by_name(n).is_none() {
                unknown_name(
                    "benchmark",
                    n,
                    &benchmark_names(),
                    "see the SPEC2000 names in DESIGN.md §4",
                );
            }
        }
        SimConfig::for_benchmarks(&names, policy).with_fidelity(fidelity)
    } else {
        eprintln!("need --workload or --benchmarks");
        usage();
    }
}

fn parse_policy_arg(args: &Args) -> PolicyKind {
    args.get("policy")
        .map(|p| {
            PolicyKind::parse_name(p).unwrap_or_else(|| {
                unknown_name(
                    "policy",
                    p,
                    &PolicyKind::SUGGESTED_NAMES,
                    "try `smtsim policies`",
                );
            })
        })
        .unwrap_or(PolicyKind::Mflush)
}

fn cmd_run(args: &Args) {
    let policy = parse_policy_arg(args);
    let cfg = build_config(args, policy)
        .with_cycles(args.get_u64("cycles", smtsim_core::config::DEFAULT_CYCLES))
        .with_seed(args.get_u64("seed", 0x5eed))
        .with_watchdog(args.get_u64(
            "watchdog",
            smtsim_core::config::DEFAULT_WATCHDOG,
        ));
    let workload = cfg.benchmarks.join(",");
    let trace_path: Option<PathBuf> = args.get("trace-events").map(PathBuf::from);
    let metrics_interval: Option<u64> = args.has("metrics-interval").then(|| {
        args.get_u64(
            "metrics-interval",
            smtsim_core::config::DEFAULT_METRICS_INTERVAL,
        )
    });
    if metrics_interval.is_some() && trace_path.is_none() {
        eprintln!("--metrics-interval requires --trace-events");
        usage();
    }
    let trace_format = args.get("trace-format").unwrap_or("jsonl");
    if !matches!(trace_format, "jsonl" | "chrome") {
        eprintln!("bad value for --trace-format: {trace_format} (want jsonl or chrome)");
        usage();
    }
    // Render the trace even when the run fails — a watchdog abort is
    // exactly when the event tail is most interesting.
    let mut trace_out: Option<String> = None;
    let outcome = Simulator::build(&cfg).and_then(|mut s| {
        if trace_path.is_some() {
            s.enable_tracing(smtsim_core::config::DEFAULT_TRACE_CAPACITY);
            if let Some(interval) = metrics_interval {
                s.enable_metrics(interval);
            }
        }
        let stepped = s.step(cfg.cycles);
        if trace_path.is_some() {
            let rows = s.trace_rows();
            let samples = s.metrics_samples();
            trace_out = Some(match trace_format {
                "chrome" => smtsim_core::obs::chrome_trace(&rows, samples),
                _ => smtsim_core::obs::observability_jsonl(&rows, samples),
            });
        }
        stepped.map(|()| s.snapshot())
    });
    if let (Some(path), Some(content)) = (&trace_path, &trace_out) {
        if let Err(e) = std::fs::write(path, content) {
            eprintln!("error writing {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    let r = match outcome {
        Ok(r) => r,
        Err(e) => {
            if args.has("json") {
                println!("{}", e.to_json());
            } else {
                eprintln!("error: {e}");
            }
            std::process::exit(1);
        }
    };
    if args.has("json") {
        println!("{}", r.to_json());
        return;
    }
    println!("workload   {workload}");
    println!("policy     {}", r.policy);
    println!("cycles     {}", r.cycles);
    println!("throughput {:.4} IPC ({} committed)", r.throughput(), r.total_committed());
    for (i, ipc) in r.per_thread_ipc().iter().enumerate() {
        println!("  thread {i} ({}) IPC {ipc:.4}", cfg.benchmarks[i]);
    }
    let e = r.energy();
    println!(
        "flushes    {} ({} instructions refetched, {:.1} eu wasted, ratio {:.4})",
        r.total_flushes(),
        e.flush_squashed_total(),
        e.wasted_energy(),
        e.waste_ratio()
    );
    println!("L2 hit time distribution:");
    print!("{}", histogram_table(&r.l2_hit_hist));
}

fn cmd_sweep(args: &Args) {
    let cycles = args.get_u64("cycles", smtsim_core::config::DEFAULT_CYCLES);
    let journal: Option<PathBuf> = args.get("journal").map(PathBuf::from);
    let policies = [
        PolicyKind::Icount,
        PolicyKind::FlushSpec(30),
        PolicyKind::FlushSpec(100),
        PolicyKind::FlushNonSpec,
        PolicyKind::StallSpec(30),
        PolicyKind::Mflush,
        PolicyKind::Dcra,
    ];
    let base = build_config(args, PolicyKind::Icount).with_cycles(cycles);
    let jobs: Vec<SweepJob> = policies
        .iter()
        .map(|p| {
            let mut cfg = base.clone();
            cfg.policy = *p;
            SweepJob::new(p.label(), cfg)
        })
        .collect();
    let out = run_sweep_journaled(&jobs, 0, journal.as_deref());
    let failed = out.iter().filter(|(_, r)| r.is_err()).count();
    let wl = base.benchmarks.join("+");
    if args.has("json") {
        // One self-describing object per job: successes carry
        // "result", failures carry "error" — so one livelocked job
        // never hides the healthy ones.
        let mut s = String::new();
        s.push_str("{\"workload\":");
        write_escaped(&mut s, &wl);
        s.push_str(",\"jobs\":[");
        for (i, (label, r)) in out.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let mut o = JsonObject::begin(&mut s);
            o.field("label", label);
            match r {
                Ok(res) => o.field("result", res),
                Err(e) => o.field("error", e),
            };
            o.end();
        }
        s.push_str("]}");
        println!("{s}");
    } else {
        for (label, r) in &out {
            if let Err(e) = r {
                eprintln!("sweep job '{label}' failed: {e}");
            }
        }
        let ok: Vec<(&str, &smtsim_core::SimResult)> = out
            .iter()
            .filter_map(|(l, r)| r.as_ref().ok().map(|res| (l.as_str(), res)))
            .collect();
        let labels: Vec<&str> = ok.iter().map(|(l, _)| *l).collect();
        let results: Vec<&smtsim_core::SimResult> = ok.iter().map(|(_, r)| *r).collect();
        if args.has("csv") {
            print!("{}", results_csv(&[(wl.as_str(), results)]));
        } else {
            print!("{}", throughput_table(&labels, &[(wl.as_str(), results)]));
        }
    }
    if failed > 0 {
        std::process::exit(1);
    }
}

fn cmd_serve(args: &Args) {
    let addr = args.get("addr").unwrap_or("127.0.0.1:0");
    let max_queue = args.get_u64("max-queue", 16) as usize;
    let workers = args.get_u64("workers", 2) as usize;
    if let Err(e) = smtsim_serve::cli::serve_main(addr, args.get("cache"), max_queue, workers) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn cmd_request(args: &Args) {
    let Some(body) = args.get("body") else {
        eprintln!("need --body '{{\"workload\":...}}'");
        usage();
    };
    let addr = args.get("addr").unwrap_or("127.0.0.1:8080");
    let timeout_ms = args.get_u64("timeout", 30_000);
    if let Err(e) = smtsim_serve::cli::request_main(addr, body, timeout_ms) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn cmd_calibrate(args: &Args) {
    let cycles = args.get_u64("cycles", 60_000);
    let rows = calibrate(cycles, 0);
    if args.has("json") {
        println!("{}", calibration_json(&rows));
    } else {
        print!("{}", calibration_table(&rows));
    }
}

fn cmd_workloads() {
    for w in ALL_WORKLOADS.iter().chain([&FIG5B_WORKLOAD]) {
        println!(
            "{:<16} {} threads / {} cores: {}",
            w.name,
            w.threads(),
            w.cores(),
            w.benchmark_names().join(", ")
        );
    }
}

fn cmd_policies() {
    for p in [
        PolicyKind::Icount,
        PolicyKind::RoundRobin,
        PolicyKind::Brcount,
        PolicyKind::L1dMissCount,
        PolicyKind::Adts,
        PolicyKind::Dcra,
        PolicyKind::StallSpec(30),
        PolicyKind::StallNonSpec,
        PolicyKind::FlushSpec(30),
        PolicyKind::FlushSpec(100),
        PolicyKind::FlushNonSpec,
        PolicyKind::FlushAdaptive,
        PolicyKind::Mflush,
    ] {
        println!("{}", p.label());
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else { usage() };
    let rest = Args::parse(&argv[1..]);
    match cmd.as_str() {
        "run" => cmd_run(&rest),
        "sweep" => cmd_sweep(&rest),
        "serve" => cmd_serve(&rest),
        "request" => cmd_request(&rest),
        "calibrate" => cmd_calibrate(&rest),
        "workloads" => cmd_workloads(),
        "policies" => cmd_policies(),
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suggestions_catch_close_typos() {
        assert_eq!(
            did_you_mean("mflsh", &PolicyKind::SUGGESTED_NAMES),
            Some("mflush")
        );
        assert_eq!(
            did_you_mean("icont", &PolicyKind::SUGGESTED_NAMES),
            Some("icount")
        );
        assert_eq!(
            did_you_mean("FLUSH-NS", &PolicyKind::SUGGESTED_NAMES),
            Some("flush-ns")
        );
        assert_eq!(did_you_mean("8W2", &workload_names()), Some("8W2"));
        assert!(did_you_mean("8w9", &workload_names()).is_some());
        assert_eq!(did_you_mean("mfc", &benchmark_names()), Some("mcf"));
    }

    #[test]
    fn distant_garbage_gets_no_suggestion() {
        assert_eq!(did_you_mean("zzzzzzzzzz", &PolicyKind::SUGGESTED_NAMES), None);
        assert_eq!(did_you_mean("qqqq", &benchmark_names()), None);
    }

    #[test]
    fn policy_parser_accepts_documented_spellings() {
        for name in PolicyKind::SUGGESTED_NAMES {
            assert!(PolicyKind::parse_name(name).is_some(), "{name} should parse");
        }
        assert!(PolicyKind::parse_name("flush-s85").is_some());
        assert!(PolicyKind::parse_name("stall-s120").is_some());
        assert!(PolicyKind::parse_name("flush-sXX").is_none());
        assert!(PolicyKind::parse_name("no-such-policy").is_none());
    }
}
