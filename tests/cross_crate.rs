//! Cross-crate wiring tests: the full stack (traces → cores → shared
//! memory → policies → energy) assembled through the public facade.

use mflush::prelude::*;
use mflush::sim::{run_sweep_ok, SweepJob};

#[test]
fn every_policy_runs_on_every_workload_size() {
    let policies = [
        PolicyKind::Icount,
        PolicyKind::FlushSpec(50),
        PolicyKind::FlushNonSpec,
        PolicyKind::StallSpec(50),
        PolicyKind::StallNonSpec,
        PolicyKind::Mflush,
        PolicyKind::Brcount,
        PolicyKind::L1dMissCount,
        PolicyKind::Adts,
    ];
    for size in [2usize, 8] {
        let w = Workload::of_size(size)[0];
        for p in policies {
            let r = Simulator::build(&SimConfig::for_workload(w, p).with_cycles(5_000))
                .unwrap()
                .run()
                .unwrap();
            assert!(
                r.total_committed() > 100,
                "{} on {}: starved with {} commits",
                p.label(),
                w.name,
                r.total_committed()
            );
        }
    }
}

#[test]
fn golden_commit_order_holds_through_the_full_stack() {
    // Every thread must commit its trace in order, exactly once, under
    // the most squash-happy policy on the most memory-bound workload.
    let w = Workload::by_name("4W3").unwrap(); // mcf, mesa, lucas, gzip
    let cfg = SimConfig::for_workload(w, PolicyKind::FlushSpec(30)).with_cycles(30_000);
    let mut sim = Simulator::build(&cfg).unwrap();
    sim.enable_commit_logs();
    sim.step(30_000).unwrap();
    for (core, log) in sim.commit_logs().iter().enumerate() {
        let mut next = [0u64; 2];
        assert!(!log.is_empty(), "core {core} committed nothing");
        for &(tid, seq) in *log {
            assert_eq!(
                seq, next[tid],
                "core {core} thread {tid}: committed {seq}, expected {}",
                next[tid]
            );
            next[tid] += 1;
        }
    }
}

#[test]
fn simulation_is_deterministic_end_to_end() {
    let run = || {
        let w = Workload::by_name("6W5").unwrap();
        let r = Simulator::build(
            &SimConfig::for_workload(w, PolicyKind::Mflush).with_cycles(10_000),
        )
        .unwrap()
        .run()
        .unwrap();
        (
            r.total_committed(),
            r.total_flushes(),
            r.l2_hit_hist.count(),
            format!("{:.6}", r.wasted_energy()),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn parallel_sweep_matches_serial_execution() {
    let mk_jobs = || {
        vec![
            SweepJob::new(
                "a",
                SimConfig::for_workload(Workload::by_name("2W2").unwrap(), PolicyKind::Mflush)
                    .with_cycles(5_000),
            ),
            SweepJob::new(
                "b",
                SimConfig::for_workload(Workload::by_name("4W4").unwrap(), PolicyKind::Icount)
                    .with_cycles(5_000),
            ),
        ]
    };
    let par = run_sweep_ok(&mk_jobs(), 2);
    let ser = run_sweep_ok(&mk_jobs(), 1);
    for ((la, a), (lb, b)) in par.iter().zip(&ser) {
        assert_eq!(la, lb);
        assert_eq!(a.total_committed(), b.total_committed());
        assert_eq!(a.total_flushes(), b.total_flushes());
    }
}

#[test]
fn config_clones_validate_and_rebuild_identically() {
    let w = Workload::by_name("8W2").unwrap();
    let cfg = SimConfig::for_workload(w, PolicyKind::FlushSpec(70));
    cfg.validate().unwrap();
    let again = cfg.clone();
    let a = Simulator::build(&cfg.with_cycles(2_000)).unwrap().run().unwrap();
    let b = Simulator::build(&again.with_cycles(2_000)).unwrap().run().unwrap();
    assert_eq!(a.total_committed(), b.total_committed());
}

#[test]
fn policy_env_is_derived_from_memory_machine() {
    let w = Workload::by_name("6W1").unwrap();
    let mut cfg = SimConfig::for_workload(w, PolicyKind::Mflush);
    cfg.mem.dram_cycles = 500;
    let env = cfg.policy_env();
    assert_eq!(env.max_latency, 22 + 500, "MAX follows the machine");
    assert_eq!(env.num_cores, 3);
}

#[test]
fn l2_clusters_reduce_mt_and_still_run() {
    // Extension: 4 cores over 2 L2 clusters — MFLUSH's operational
    // environment must use the 2 cores per cluster for its MT term.
    let w = Workload::by_name("8W2").unwrap();
    let mut cfg = SimConfig::for_workload(w, PolicyKind::Mflush).with_cycles(10_000);
    cfg.mem.l2_clusters = 2;
    cfg.topology.l2_clusters = 2; // keep the declared topology in sync
    cfg.validate().unwrap();
    let env = cfg.policy_env();
    assert_eq!(env.num_cores, 2, "MT scales with cores per cluster");
    let r = Simulator::build(&cfg).unwrap().run().unwrap();
    assert!(r.total_committed() > 1_000);
}

#[test]
fn next_line_prefetch_runs_end_to_end() {
    let w = Workload::by_name("4W2").unwrap();
    let mut cfg = SimConfig::for_workload(w, PolicyKind::Icount).with_cycles(10_000);
    cfg.mem.next_line_prefetch = true;
    let r = Simulator::build(&cfg).unwrap().run().unwrap();
    let prefetches = r.mem.total(|c| c.prefetches);
    assert!(prefetches > 0, "streaming workload must trigger prefetches");
    assert!(r.total_committed() > 1_000);
}

#[test]
fn extension_policies_run_on_real_workloads() {
    for p in [
        PolicyKind::RoundRobin,
        PolicyKind::Dcra,
        PolicyKind::FlushAdaptive,
        PolicyKind::FlushMissPredict,
    ] {
        let w = Workload::by_name("4W3").unwrap();
        let r = Simulator::build(&SimConfig::for_workload(w, p).with_cycles(8_000))
            .unwrap()
            .run()
            .unwrap();
        assert!(
            r.total_committed() > 500,
            "{} starved: {}",
            p.label(),
            r.total_committed()
        );
    }
}

#[test]
fn mflush_introspection_via_core_policy_handle() {
    let w = Workload::by_name("4W3").unwrap();
    let cfg = SimConfig::for_workload(w, PolicyKind::Mflush).with_cycles(20_000);
    let mut sim = Simulator::build(&cfg).unwrap();
    sim.step(20_000).unwrap();
    for core in sim.cores() {
        assert_eq!(core.policy_name(), "MFLUSH");
    }
    let r = sim.snapshot();
    let stalls: u64 = r.cores.iter().map(|c| c.stalls_executed).sum();
    assert!(
        stalls > 0,
        "MFLUSH preventive state should engage on mcf/lucas"
    );
}
