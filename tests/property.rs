//! Property-based tests (proptest) over the full stack.
//!
//! Strategy space: random benchmark assignments, policies, seeds and
//! short intervals. Invariants: the simulator never panics, always makes
//! progress, respects the golden per-thread trace order, and its energy
//! ledger stays consistent.

use mflush::prelude::*;
use proptest::prelude::*;

/// A strategy over benchmark names (the Fig. 1 legend).
fn benchmark() -> impl Strategy<Value = &'static str> {
    prop::sample::select(
        spec::ALL_BENCHMARKS
            .iter()
            .map(|b| b.name)
            .collect::<Vec<_>>(),
    )
}

/// A strategy over fetch policies, including ablation variants.
fn policy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Icount),
        (20u64..150).prop_map(PolicyKind::FlushSpec),
        Just(PolicyKind::FlushNonSpec),
        (20u64..150).prop_map(PolicyKind::StallSpec),
        Just(PolicyKind::StallNonSpec),
        Just(PolicyKind::Mflush),
        Just(PolicyKind::Brcount),
        Just(PolicyKind::L1dMissCount),
        Just(PolicyKind::Adts),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// Any 2-thread mix under any policy commits in trace order,
    /// exactly once per sequence number, and makes progress.
    #[test]
    fn golden_order_for_random_mixes(
        b0 in benchmark(),
        b1 in benchmark(),
        p in policy(),
        seed in 0u64..1_000_000,
    ) {
        let cfg = SimConfig::for_benchmarks(&[b0, b1], p)
            .with_cycles(4_000)
            .with_seed(seed);
        let mut sim = Simulator::build(&cfg);
        sim.enable_commit_logs();
        sim.step(4_000);
        let r = sim.snapshot();
        prop_assert!(r.total_committed() > 0, "no progress for {b0}+{b1} under {}", p.label());
        for log in sim.commit_logs() {
            let mut next = [0u64; 2];
            for &(tid, seq) in log {
                prop_assert_eq!(seq, next[tid]);
                next[tid] += 1;
            }
        }
    }

    /// The energy ledger is internally consistent for any run: totals
    /// decompose exactly into useful + flush waste + mispredict waste,
    /// and only flushing policies produce flush waste.
    #[test]
    fn energy_ledger_consistency(
        b0 in benchmark(),
        b1 in benchmark(),
        p in policy(),
    ) {
        let cfg = SimConfig::for_benchmarks(&[b0, b1], p).with_cycles(4_000);
        let r = Simulator::build(&cfg).run();
        let e = r.energy();
        let total = e.total_energy();
        let parts = e.useful_energy() + e.wasted_energy() + e.mispredict_energy();
        prop_assert!((total - parts).abs() < 1e-6);
        prop_assert_eq!(e.committed(), r.total_committed());
        match p {
            PolicyKind::Icount
            | PolicyKind::Brcount
            | PolicyKind::L1dMissCount
            | PolicyKind::Adts
            | PolicyKind::StallSpec(_)
            | PolicyKind::StallNonSpec => {
                prop_assert_eq!(e.flush_squashed_total(), 0, "{} never flushes", p.label());
            }
            _ => {}
        }
    }

    /// Throughput is reported consistently: IPC × cycles = commits, and
    /// per-thread IPCs sum to the system IPC.
    #[test]
    fn throughput_accounting(
        b0 in benchmark(),
        b1 in benchmark(),
        seed in 0u64..100_000,
    ) {
        let cfg = SimConfig::for_benchmarks(&[b0, b1], PolicyKind::Mflush)
            .with_cycles(3_000)
            .with_seed(seed);
        let r = Simulator::build(&cfg).run();
        let from_ipc = r.throughput() * r.cycles as f64;
        prop_assert!((from_ipc - r.total_committed() as f64).abs() < 1e-6);
        let sum: f64 = r.per_thread_ipc().iter().sum();
        prop_assert!((sum - r.throughput()).abs() < 1e-9);
    }

    /// Determinism holds for arbitrary seeds and mixes.
    #[test]
    fn determinism_for_random_configs(
        b0 in benchmark(),
        b1 in benchmark(),
        p in policy(),
        seed in 0u64..1_000_000,
    ) {
        let run = || {
            let cfg = SimConfig::for_benchmarks(&[b0, b1], p)
                .with_cycles(2_500)
                .with_seed(seed);
            let r = Simulator::build(&cfg).run();
            (r.total_committed(), r.total_flushes())
        };
        prop_assert_eq!(run(), run());
    }
}
