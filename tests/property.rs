//! Property-based tests over the full stack, on the in-repo harness
//! (`smtsim_trace::check`).
//!
//! Case space: random benchmark assignments, policies, seeds and short
//! intervals. Invariants: the simulator never panics, always makes
//! progress, respects the golden per-thread trace order, and its energy
//! ledger stays consistent.

use mflush::prelude::*;
use mflush::trace::check::{Cases, Gen};

/// A random benchmark name (the Fig. 1 legend).
fn benchmark(g: &mut Gen) -> &'static str {
    g.choose(&spec::ALL_BENCHMARKS).name
}

/// A random fetch policy, including ablation variants.
fn policy(g: &mut Gen) -> PolicyKind {
    match g.u32_in(0..9) {
        0 => PolicyKind::Icount,
        1 => PolicyKind::FlushSpec(g.u64_in(20..150)),
        2 => PolicyKind::FlushNonSpec,
        3 => PolicyKind::StallSpec(g.u64_in(20..150)),
        4 => PolicyKind::StallNonSpec,
        5 => PolicyKind::Mflush,
        6 => PolicyKind::Brcount,
        7 => PolicyKind::L1dMissCount,
        _ => PolicyKind::Adts,
    }
}

/// Any 2-thread mix under any policy commits in trace order, exactly
/// once per sequence number, and makes progress.
#[test]
fn golden_order_for_random_mixes() {
    Cases::new(12).run("golden_order_for_random_mixes", |g| {
        let (b0, b1) = (benchmark(g), benchmark(g));
        let p = policy(g);
        let seed = g.u64_in(0..1_000_000);
        let cfg = SimConfig::for_benchmarks(&[b0, b1], p)
            .with_cycles(4_000)
            .with_seed(seed);
        let mut sim = Simulator::build(&cfg).unwrap();
        sim.enable_commit_logs();
        sim.step(4_000).unwrap();
        let r = sim.snapshot();
        assert!(
            r.total_committed() > 0,
            "no progress for {b0}+{b1} under {}",
            p.label()
        );
        for log in sim.commit_logs() {
            let mut next = [0u64; 2];
            for &(tid, seq) in log {
                assert_eq!(seq, next[tid]);
                next[tid] += 1;
            }
        }
    });
}

/// The energy ledger is internally consistent for any run: totals
/// decompose exactly into useful + flush waste + mispredict waste, and
/// only flushing policies produce flush waste.
#[test]
fn energy_ledger_consistency() {
    Cases::new(12).run("energy_ledger_consistency", |g| {
        let (b0, b1) = (benchmark(g), benchmark(g));
        let p = policy(g);
        let cfg = SimConfig::for_benchmarks(&[b0, b1], p).with_cycles(4_000);
        let r = Simulator::build(&cfg).unwrap().run().unwrap();
        let e = r.energy();
        let total = e.total_energy();
        let parts = e.useful_energy() + e.wasted_energy() + e.mispredict_energy();
        assert!((total - parts).abs() < 1e-6);
        assert_eq!(e.committed(), r.total_committed());
        match p {
            PolicyKind::Icount
            | PolicyKind::Brcount
            | PolicyKind::L1dMissCount
            | PolicyKind::Adts
            | PolicyKind::StallSpec(_)
            | PolicyKind::StallNonSpec => {
                assert_eq!(e.flush_squashed_total(), 0, "{} never flushes", p.label());
            }
            _ => {}
        }
    });
}

/// Throughput is reported consistently: IPC × cycles = commits, and
/// per-thread IPCs sum to the system IPC.
#[test]
fn throughput_accounting() {
    Cases::new(12).run("throughput_accounting", |g| {
        let (b0, b1) = (benchmark(g), benchmark(g));
        let seed = g.u64_in(0..100_000);
        let cfg = SimConfig::for_benchmarks(&[b0, b1], PolicyKind::Mflush)
            .with_cycles(3_000)
            .with_seed(seed);
        let r = Simulator::build(&cfg).unwrap().run().unwrap();
        let from_ipc = r.throughput() * r.cycles as f64;
        assert!((from_ipc - r.total_committed() as f64).abs() < 1e-6);
        let sum: f64 = r.per_thread_ipc().iter().sum();
        assert!((sum - r.throughput()).abs() < 1e-9);
    });
}

/// Determinism holds for arbitrary seeds and mixes.
#[test]
fn determinism_for_random_configs() {
    Cases::new(12).run("determinism_for_random_configs", |g| {
        let (b0, b1) = (benchmark(g), benchmark(g));
        let p = policy(g);
        let seed = g.u64_in(0..1_000_000);
        let run = || {
            let cfg = SimConfig::for_benchmarks(&[b0, b1], p)
                .with_cycles(2_500)
                .with_seed(seed);
            let r = Simulator::build(&cfg).unwrap().run().unwrap();
            (r.total_committed(), r.total_flushes())
        };
        assert_eq!(run(), run());
    });
}
