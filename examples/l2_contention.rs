//! The paper's motivating analysis (Figs. 3–4): watch the shared L2's
//! hit latency lose its predictability as SMT cores are added, and see
//! what that does to a fixed FLUSH trigger.
//!
//! ```text
//! cargo run --release --example l2_contention [CYCLES] [--fidelity mem=fast,core=approx]
//! ```

use mflush::prelude::*;
use mflush::sim::report::histogram_table;
use mflush::sim::{run_sweep_ok, SweepJob};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let fidelity = Fidelity::extract_from_args(&mut args).unwrap_or_else(|e| {
        eprintln!("bad value for --fidelity: {e}");
        std::process::exit(2);
    });
    let cycles: u64 = args
        .first()
        .and_then(|c| c.parse().ok())
        .unwrap_or(80_000);

    for size in [2usize, 4, 6, 8] {
        let workloads = Workload::of_size(size);
        let jobs: Vec<SweepJob> = workloads
            .iter()
            .flat_map(|w| {
                [PolicyKind::Icount, PolicyKind::FlushSpec(30)]
                    .into_iter()
                    .map(|p| {
                        SweepJob::new(
                            format!("{}/{}", w.name, p.label()),
                            SimConfig::for_workload(w, p)
                                .with_cycles(cycles)
                                .with_fidelity(fidelity),
                        )
                    })
            })
            .collect();
        let results = run_sweep_ok(&jobs, 0);

        let mut hist = mflush::mem::LatencyHistogram::for_l2_hit_time();
        let mut ic = 0.0;
        let mut fl = 0.0;
        for (label, r) in &results {
            if label.ends_with("ICOUNT") {
                hist.merge(&r.l2_hit_hist);
                ic += r.throughput() / workloads.len() as f64;
            } else {
                fl += r.throughput() / workloads.len() as f64;
            }
        }
        println!(
            "== {size} threads / {} cores: ICOUNT {ic:.3} IPC, FLUSH-S30 {fl:.3} IPC (ratio {:.3}) ==",
            size / 2,
            fl / ic
        );
        println!("{}", histogram_table(&hist));
    }
    println!(
        "Note how the mean and the spread of the L2-hit time grow with the\n\
         core count — a fixed 30-cycle trigger turns ever more L2 *hits*\n\
         into false misses, eroding FLUSH's single-core advantage. This is\n\
         the unpredictability MFLUSH's per-bank MCReg prediction absorbs."
    );
}
