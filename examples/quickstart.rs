//! Quickstart: simulate one of the paper's workloads under MFLUSH.
//!
//! ```text
//! cargo run --release --example quickstart [WORKLOAD] [CYCLES] [TRACE_FILE] [--fidelity mem=fast,core=approx]
//! cargo run --release --example quickstart 6W3 200000
//! cargo run --release --example quickstart 8W3 200000 /tmp/8w3.jsonl
//! ```
//!
//! With a third argument the run also records the cycle-level event
//! trace plus interval metric samples (DESIGN.md §12) and writes them
//! as JSONL — see METRICS.md for every metric name.

use mflush::prelude::*;
use mflush::sim::config::{DEFAULT_METRICS_INTERVAL, DEFAULT_TRACE_CAPACITY};
use mflush::sim::obs;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let fidelity = Fidelity::extract_from_args(&mut args).unwrap_or_else(|e| {
        eprintln!("bad value for --fidelity: {e}");
        std::process::exit(2);
    });
    let workload = args.first().map(String::as_str).unwrap_or("4W3");
    let cycles: u64 = args
        .get(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or(100_000);
    let trace_file = args.get(2);

    let w = Workload::by_name(workload).unwrap_or_else(|| {
        eprintln!("unknown workload {workload}; use 2W1..8W5");
        std::process::exit(1);
    });

    println!(
        "Running {} ({} threads on {} two-context SMT cores) for {cycles} cycles under MFLUSH\n",
        w.name,
        w.threads(),
        w.cores()
    );

    let cfg = SimConfig::for_workload(w, PolicyKind::Mflush)
        .with_cycles(cycles)
        .with_fidelity(fidelity);
    if fidelity.is_reduced() {
        println!("(reduced fidelity: {})\n", fidelity.label());
    }
    let mut sim = Simulator::build(&cfg).expect("paper workload configs are valid");
    if trace_file.is_some() {
        sim.enable_tracing(DEFAULT_TRACE_CAPACITY);
        sim.enable_metrics(DEFAULT_METRICS_INTERVAL.min(cycles.max(1)));
    }
    sim.step(cycles)
        .expect("paper workloads make forward progress");
    let result = sim.snapshot();

    if let Some(path) = trace_file {
        let jsonl = obs::observability_jsonl(&sim.trace_rows(), sim.metrics_samples());
        std::fs::write(path, &jsonl).expect("write trace file");
        println!(
            "wrote {} trace/metric lines to {path}\n",
            jsonl.lines().count()
        );
    }

    println!("policy            {}", result.policy);
    println!("system throughput {:.4} IPC", result.throughput());
    println!("committed         {} instructions", result.total_committed());
    for (i, (name, ipc)) in w
        .benchmark_names()
        .iter()
        .zip(result.per_thread_ipc())
        .enumerate()
    {
        println!("  thread {i} ({name:<8}) IPC {ipc:.4}");
    }
    let e = result.energy();
    println!("flushes           {}", result.total_flushes());
    println!(
        "energy            {:.0} useful + {:.0} wasted units (waste ratio {:.3})",
        e.useful_energy(),
        e.wasted_energy(),
        e.waste_ratio()
    );
    println!(
        "L2 hit time       mean {:.1} cycles over {} hits (p90 {:?})",
        result.l2_hit_hist.mean(),
        result.l2_hit_hist.count(),
        result.l2_hit_hist.percentile(0.9)
    );
}
