//! Quickstart: simulate one of the paper's workloads under MFLUSH.
//!
//! ```text
//! cargo run --release --example quickstart [WORKLOAD] [CYCLES]
//! cargo run --release --example quickstart 6W3 200000
//! ```

use mflush::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload = args.first().map(String::as_str).unwrap_or("4W3");
    let cycles: u64 = args
        .get(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or(100_000);

    let w = Workload::by_name(workload).unwrap_or_else(|| {
        eprintln!("unknown workload {workload}; use 2W1..8W5");
        std::process::exit(1);
    });

    println!(
        "Running {} ({} threads on {} two-context SMT cores) for {cycles} cycles under MFLUSH\n",
        w.name,
        w.threads(),
        w.cores()
    );

    let cfg = SimConfig::for_workload(w, PolicyKind::Mflush).with_cycles(cycles);
    let result = Simulator::build(&cfg)
        .expect("paper workload configs are valid")
        .run()
        .expect("paper workloads make forward progress");

    println!("policy            {}", result.policy);
    println!("system throughput {:.4} IPC", result.throughput());
    println!("committed         {} instructions", result.total_committed());
    for (i, (name, ipc)) in w
        .benchmark_names()
        .iter()
        .zip(result.per_thread_ipc())
        .enumerate()
    {
        println!("  thread {i} ({name:<8}) IPC {ipc:.4}");
    }
    let e = result.energy();
    println!("flushes           {}", result.total_flushes());
    println!(
        "energy            {:.0} useful + {:.0} wasted units (waste ratio {:.3})",
        e.useful_energy(),
        e.wasted_energy(),
        e.waste_ratio()
    );
    println!(
        "L2 hit time       mean {:.1} cycles over {} hits (p90 {:?})",
        result.l2_hit_hist.mean(),
        result.l2_hit_hist.count(),
        result.l2_hit_hist.percentile(0.9)
    );
}
