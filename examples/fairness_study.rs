//! Fairness study (extension): the paper frames FLUSH as a
//! "throughput-oriented" mechanism — what do the policies do to
//! *balanced* progress? Compares raw IPC, harmonic-mean IPC and the
//! min/max fairness index, plus per-thread speedups over ICOUNT.
//!
//! ```text
//! cargo run --release --example fairness_study [WORKLOAD] [CYCLES] [--fidelity mem=fast,core=approx]
//! ```

use mflush::prelude::*;
use mflush::sim::report::bar_chart;
use mflush::sim::{run_sweep_ok, SweepJob};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let fidelity = Fidelity::extract_from_args(&mut args).unwrap_or_else(|e| {
        eprintln!("bad value for --fidelity: {e}");
        std::process::exit(2);
    });
    let workload = args.first().map(String::as_str).unwrap_or("4W3");
    let cycles: u64 = args.get(1).and_then(|c| c.parse().ok()).unwrap_or(100_000);
    let w = Workload::by_name(workload).expect("workload name like 4W3");

    let policies = [
        PolicyKind::Icount,
        PolicyKind::Dcra,
        PolicyKind::StallSpec(30),
        PolicyKind::FlushSpec(30),
        PolicyKind::FlushSpec(100),
        PolicyKind::Mflush,
    ];
    let jobs: Vec<SweepJob> = policies
        .iter()
        .map(|p| {
            SweepJob::new(
                p.label(),
                SimConfig::for_workload(w, *p)
                    .with_cycles(cycles)
                    .with_fidelity(fidelity),
            )
        })
        .collect();
    let results = run_sweep_ok(&jobs, 0);
    let baseline = &results[0].1;

    println!("{} for {cycles} cycles — throughput vs fairness\n", w.name);
    println!(
        "{:<12}{:>10}{:>12}{:>12}",
        "policy", "IPC", "hmean IPC", "min/max"
    );
    for (label, r) in &results {
        println!(
            "{label:<12}{:>10.4}{:>12.4}{:>12.3}",
            r.throughput(),
            r.hmean_ipc(),
            r.fairness_index()
        );
    }

    println!("\nPer-thread speedups over ICOUNT:");
    for (label, r) in results.iter().skip(1) {
        let sp = r.per_thread_speedup(baseline);
        let names = w.benchmark_names();
        println!("  {label}:");
        let rows: Vec<(&str, f64)> = names.iter().zip(&sp).map(|(n, &s)| (*n, s)).collect();
        print!(
            "{}",
            bar_chart(&rows, 40)
                .lines()
                .map(|l| format!("    {l}\n"))
                .collect::<String>()
        );
    }
    println!(
        "\nReading: FLUSH-style policies buy total throughput by squashing\n\
         the memory-bound threads; the harmonic mean and the per-thread\n\
         bars show who pays for the speedup."
    );
}
