//! Trace capture and replay: record a synthetic benchmark trace to disk
//! and replay it through the serialisation layer — the workflow of the
//! paper's trace-driven methodology.
//!
//! ```text
//! cargo run --release --example trace_tools [BENCHMARK] [N_INSTRS]
//! ```

use mflush::trace::{
    spec, InstrClass, InstrStream, TraceGenerator, TraceReader, TraceWriter,
};
use std::fs::File;
use std::io::{BufReader, BufWriter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench = args.first().map(String::as_str).unwrap_or("mcf");
    let n: u64 = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(100_000);

    let profile = spec::benchmark_by_name(bench).unwrap_or_else(|| {
        eprintln!("unknown benchmark {bench}");
        std::process::exit(1);
    });

    let path = std::env::temp_dir().join(format!("{bench}.mftrace"));
    println!("capturing {n} instructions of {bench} to {}", path.display());
    let mut gen = TraceGenerator::new(profile, 42);
    let mut writer = TraceWriter::new(BufWriter::new(File::create(&path)?))?;
    writer.capture(&mut gen, n)?;
    writer.finish()?;

    println!("replaying and summarising…");
    let mut reader = TraceReader::new(BufReader::new(File::open(&path)?))?;
    let mut counts = std::collections::BTreeMap::<&str, u64>::new();
    let mut branches_taken = 0u64;
    let mut check_gen = TraceGenerator::new(profile, 42);
    let mut mismatches = 0u64;
    while let Some(i) = reader.read_instr()? {
        *counts
            .entry(match i.class {
                InstrClass::IntAlu => "int alu",
                InstrClass::IntMul => "int mul",
                InstrClass::FpAlu => "fp alu",
                InstrClass::FpMul => "fp mul",
                InstrClass::FpDiv => "fp div",
                InstrClass::Load => "load",
                InstrClass::Store => "store",
                InstrClass::BranchCond => "branch (cond)",
                InstrClass::BranchUncond => "branch (uncond)",
                InstrClass::Nop => "nop",
            })
            .or_default() += 1;
        if i.class.is_branch() && i.taken {
            branches_taken += 1;
        }
        // Determinism check: the replay matches a fresh generation.
        if i != check_gen.next_instr() {
            mismatches += 1;
        }
    }
    for (class, count) in &counts {
        println!("  {class:<16} {count:>9} ({:5.2}%)", 100.0 * *count as f64 / n as f64);
    }
    println!("  taken branches   {branches_taken:>9}");
    assert_eq!(mismatches, 0, "replay must match regeneration exactly");
    println!("replay matches regeneration instruction-for-instruction ✓");
    std::fs::remove_file(&path)?;
    Ok(())
}
