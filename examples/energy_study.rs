//! Energy deep-dive: where do flushed instructions die in the pipeline,
//! and what does that cost? (The machinery behind Figs. 9–11.)
//!
//! ```text
//! cargo run --release --example energy_study [WORKLOAD] [CYCLES] [--fidelity mem=fast,core=approx]
//! ```

use mflush::energy::{accumulated_factor, ALL_STAGES};
use mflush::prelude::*;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let fidelity = Fidelity::extract_from_args(&mut args).unwrap_or_else(|e| {
        eprintln!("bad value for --fidelity: {e}");
        std::process::exit(2);
    });
    let workload = args.first().map(String::as_str).unwrap_or("8W1");
    let cycles: u64 = args.get(1).and_then(|c| c.parse().ok()).unwrap_or(100_000);
    let w = Workload::by_name(workload).expect("workload name like 8W1");

    println!("Energy Consumption Factor (paper Fig. 10):");
    print!("{}", mflush::energy::report::ecf_table());
    println!();

    for policy in [
        PolicyKind::FlushSpec(30),
        PolicyKind::FlushSpec(100),
        PolicyKind::Mflush,
    ] {
        let cfg = SimConfig::for_workload(w, policy)
            .with_cycles(cycles)
            .with_fidelity(fidelity);
        let r = Simulator::build(&cfg)
            .expect("paper workload configs are valid")
            .run()
            .expect("paper workloads make forward progress");
        let e = r.energy();
        println!(
            "== {} on {} — {} flushes, {} instructions refetched ==",
            policy.label(),
            w.name,
            r.total_flushes(),
            e.flush_squashed_total()
        );
        let by_stage = e.flush_squashed_by_stage();
        for stage in ALL_STAGES {
            let n = by_stage[stage.index()];
            if n > 0 {
                println!(
                    "  squashed after {:<10} {:>8} instrs × {:.2} eu = {:>10.1} eu",
                    stage.name(),
                    n,
                    accumulated_factor(stage),
                    n as f64 * accumulated_factor(stage)
                );
            }
        }
        println!(
            "  total wasted {:.1} eu on {:.0} eu useful (ratio {:.4}), throughput {:.4} IPC\n",
            e.wasted_energy(),
            e.useful_energy(),
            e.waste_ratio(),
            r.throughput()
        );
    }
}
