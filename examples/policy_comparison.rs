//! Compare every fetch policy on one workload — the experiment behind
//! the paper's Figs. 2/3/8, on demand.
//!
//! ```text
//! cargo run --release --example policy_comparison [WORKLOAD] [CYCLES] [--fidelity mem=fast,core=approx]
//! ```

use mflush::prelude::*;
use mflush::sim::{run_sweep_ok, SweepJob};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let fidelity = Fidelity::extract_from_args(&mut args).unwrap_or_else(|e| {
        eprintln!("bad value for --fidelity: {e}");
        std::process::exit(2);
    });
    let workload = args.first().map(String::as_str).unwrap_or("8W3");
    let cycles: u64 = args.get(1).and_then(|c| c.parse().ok()).unwrap_or(100_000);

    let w = Workload::by_name(workload).expect("workload name like 8W3");
    let policies = [
        PolicyKind::Icount,
        PolicyKind::Brcount,
        PolicyKind::L1dMissCount,
        PolicyKind::Adts,
        PolicyKind::RoundRobin,
        PolicyKind::Dcra,
        PolicyKind::StallSpec(30),
        PolicyKind::FlushSpec(30),
        PolicyKind::FlushSpec(100),
        PolicyKind::FlushNonSpec,
        PolicyKind::FlushAdaptive,
        PolicyKind::Mflush,
    ];
    let jobs: Vec<SweepJob> = policies
        .iter()
        .map(|p| {
            SweepJob::new(
                p.label(),
                SimConfig::for_workload(w, *p)
                    .with_cycles(cycles)
                    .with_fidelity(fidelity),
            )
        })
        .collect();

    println!(
        "{} for {cycles} cycles, all policies (parallel sweep, {}):\n",
        w.name,
        fidelity.label()
    );
    let results = run_sweep_ok(&jobs, 0);
    let base = results[0].1.throughput();
    println!(
        "{:<14}{:>10}{:>10}{:>10}{:>14}{:>12}",
        "policy", "IPC", "vs ICOUNT", "flushes", "wasted (eu)", "waste ratio"
    );
    for (label, r) in &results {
        let e = r.energy();
        println!(
            "{label:<14}{:>10.4}{:>10.3}{:>10}{:>14.0}{:>12.4}",
            r.throughput(),
            r.throughput() / base,
            r.total_flushes(),
            e.wasted_energy(),
            e.waste_ratio()
        );
    }
}
